package des

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"llmbench/internal/workload"
)

// Role assigns a station to a pool in a disaggregated topology. The
// zero value (RoleBoth) is the aggregated default: the station runs a
// request's prefill and decode phases back to back, exactly as every
// station did before pool roles existed.
type Role uint8

const (
	// RoleBoth runs both phases on one station (aggregated).
	RoleBoth Role = iota
	// RolePrefill runs only prompt prefills; each completed prefill
	// hands its KV blocks to the decode pool via a kv-transfer event.
	RolePrefill
	// RoleDecode runs only decode sub-requests delivered by
	// kv-transfer events.
	RoleDecode
)

func (r Role) String() string {
	switch r {
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	}
	return "both"
}

// ErrBadTransfer marks kv-transfer pricing that cannot produce finite
// positive transfer times: zero, negative, NaN, or infinite bandwidth
// or latency would yield Inf/NaN event timestamps that break the
// event clock (and would slip past SLO folding as "fast" points).
var ErrBadTransfer = errors.New("des: invalid kv-transfer pricing")

// TransferCost prices kv-transfer events — the hand-off of a
// completed prefill sub-request's KV blocks from a prefill-pool
// station to the decode pool.
type TransferCost struct {
	// BlockTokens is the paged-KV block granularity: transfers move
	// whole blocks, so the wire size rounds the prompt up to it.
	BlockTokens int
	// BytesPerToken is the model's per-token KV footprint in bytes.
	BytesPerToken float64
	// GBPerS is the pool interconnect bandwidth in GB/s
	// (hw.Device.InterconnectGBs).
	GBPerS float64
	// LatencyS is the per-transfer latency floor in seconds
	// (hw.Device.InterconnectLatencyUS × 1e-6). Beyond pricing, it is
	// the kernel's conservative lookahead: no transfer can deliver
	// sooner than LatencyS after the prefill event that produced it,
	// so barriers may safely extend that far past a prefill station's
	// next event without missing a delivery.
	LatencyS float64
}

// Validate rejects pricing that would produce non-positive or
// non-finite transfer times. Each failure wraps ErrBadTransfer.
func (t TransferCost) Validate() error {
	if t.BlockTokens < 1 {
		return fmt.Errorf("%w: BlockTokens %d (want ≥ 1)", ErrBadTransfer, t.BlockTokens)
	}
	// The negated comparisons also reject NaN, which `x <= 0` lets
	// through.
	if !(t.BytesPerToken > 0) || math.IsInf(t.BytesPerToken, 0) {
		return fmt.Errorf("%w: BytesPerToken %v (want positive and finite)", ErrBadTransfer, t.BytesPerToken)
	}
	if !(t.GBPerS > 0) || math.IsInf(t.GBPerS, 0) {
		return fmt.Errorf("%w: GBPerS %v (want positive and finite)", ErrBadTransfer, t.GBPerS)
	}
	if !(t.LatencyS > 0) || math.IsInf(t.LatencyS, 0) {
		return fmt.Errorf("%w: LatencyS %v (want positive and finite)", ErrBadTransfer, t.LatencyS)
	}
	return nil
}

// Seconds prices one transfer: the prompt's KV rounded up to whole
// blocks over the interconnect, plus the per-message latency.
func (t TransferCost) Seconds(tokens int) float64 {
	blocks := (tokens + t.BlockTokens - 1) / t.BlockTokens
	return float64(blocks*t.BlockTokens)*t.BytesPerToken/(t.GBPerS*1e9) + t.LatencyS
}

// transfer is an in-flight kv-transfer: a decode sub-request together
// with its lifecycle so far (arrival, prefill timing, transfer
// delay), due for delivery to a decode-pool station at time at. The
// request's Arrival is rewritten to the delivery instant so decode
// queues stay sorted by effective arrival; the original arrival
// survives in stats.
type transfer struct {
	at    float64
	req   workload.Request
	stats RequestStats
}

// insertPending inserts a transfer into the kernel's pending delivery
// queue, keeping it sorted by (delivery time, request ID) — the
// documented tie order for simultaneous deliveries. Like
// Station.enqueue, the popped prefix is compacted before the append
// would grow the array, so steady state reuses one backing array.
func (k *Kernel) insertPending(x transfer) {
	if k.phead > 0 && len(k.pending) == cap(k.pending) {
		n := copy(k.pending, k.pending[k.phead:])
		k.pending, k.phead = k.pending[:n], 0
	}
	live := k.pending[k.phead:]
	i := sort.Search(len(live), func(i int) bool {
		if live[i].at != x.at {
			return live[i].at > x.at
		}
		return live[i].req.ID > x.req.ID
	})
	k.pending = append(k.pending, transfer{})
	live = k.pending[k.phead:]
	copy(live[i+1:], live[i:])
	live[i] = x
}

// collectTransfers moves the transfers generated during the last
// barrier from the due stations' buffers into the pending queue. Runs
// on the kernel's goroutine between barriers; the (at, ID) sort order
// makes the result independent of station iteration order.
func (k *Kernel) collectTransfers() {
	for _, i := range k.due {
		s := k.stations[i]
		if len(s.xfers) == 0 {
			continue
		}
		for _, x := range s.xfers {
			k.insertPending(x)
		}
		s.xfers = s.xfers[:0]
	}
}

// transferHorizon is a conservative lower bound on the delivery time
// of any kv-transfer not yet in the pending queue: a prefill
// station's next event runs at nextAt or later, hands off at the
// event's end (strictly later — the stall guard forbids zero-length
// events), and every transfer takes at least the interconnect
// latency. Barriers never extend past this horizon, so a transfer
// generated during a barrier always delivers strictly after it.
func (k *Kernel) transferHorizon() float64 {
	h := math.Inf(1)
	for _, i := range k.awake {
		s := k.stations[i]
		if s.role == RolePrefill && s.nextAt >= 0 && s.nextAt+k.minXfer < h {
			h = s.nextAt + k.minXfer
		}
	}
	return h
}

package des

// Allocation-regression gates: the kernel's steady state — request
// records from the free list, queue and scratch buffers warmed,
// engine memos populated — must not allocate per event. A PR that
// reintroduces a per-admission or per-iteration allocation fails
// these gates instead of silently regressing the BENCH.md
// million-request rows. White-box on purpose: the gates drive the
// station event loop directly so the measurement isolates the kernel
// from trace generation and stats aggregation.

import (
	"math"
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

func allocTestStation(t *testing.T, cfg Config, capGiB float64) *Station {
	t.Helper()
	m := model.MustGet("LLaMA-3-8B")
	eng, err := engine.New(engine.Config{
		Model:     m,
		Device:    hw.MustGet("A100"),
		Framework: framework.MustGet("vLLM"),
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), capGiB*(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	return &Station{ID: 0, Engine: eng, Alloc: alloc, cfg: cfg, nextAt: -1, xferCut: -1}
}

// stationCycle admits a wave of requests and advances the station
// until it drains, then resets the completion buffer the way the
// kernel's flush does — one steady-state admission→decode→finish
// cycle with fixed memo keys.
func stationCycle(t *testing.T, s *Station, reqs []workload.Request) func() {
	t.Helper()
	return func() {
		for _, r := range reqs {
			s.enqueue(queued{req: r})
		}
		s.nextAt = 0
		s.advance(math.Inf(1), nil)
		if s.err != nil {
			t.Fatal(s.err)
		}
		if s.queueLen() != 0 || len(s.run) != 0 {
			t.Fatal("cycle did not drain the station")
		}
		s.finished = s.finished[:0]
		s.finHead = 0
	}
}

func allocTestReqs(n int) []workload.Request {
	reqs := make([]workload.Request, n)
	for i := range reqs {
		reqs[i] = workload.Request{ID: i, Input: 256 + 16*i, Output: 48 + 8*i, Arrival: 0}
	}
	return reqs
}

// TestStationStepSteadyStateAllocs gates the continuous
// (iteration-level, preemptive, coalescing) station path at zero
// steady-state allocations per full request cycle.
func TestStationStepSteadyStateAllocs(t *testing.T) {
	s := allocTestStation(t, Config{MaxBatch: 8, Preemptive: true}, 16)
	cycle := stationCycle(t, s, allocTestReqs(8))
	cycle() // warm free lists, scratch buffers, and engine memos
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Errorf("continuous steady-state station cycle allocates %.1f times, want 0", avg)
	}
}

// TestStationStepStaticSteadyStateAllocs gates the static-batching
// station path the same way.
func TestStationStepStaticSteadyStateAllocs(t *testing.T) {
	s := allocTestStation(t, Config{MaxBatch: 8, Static: true}, 16)
	cycle := stationCycle(t, s, allocTestReqs(12)) // > MaxBatch: two batch windows
	cycle()
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Errorf("static steady-state station cycle allocates %.1f times, want 0", avg)
	}
}

// disaggTestTransfer prices transfers for the white-box gates; the
// values are A100-shaped but arbitrary — only positivity matters.
var disaggTestTransfer = TransferCost{BlockTokens: 16, BytesPerToken: 131072, GBPerS: 600, LatencyS: 3e-6}

// TestStationStepPrefillSteadyStateAllocs gates the prefill-pool
// station path at zero steady-state allocations per hand-off cycle:
// request records must come from the free list and transfer records
// from the warmed xfers buffer.
func TestStationStepPrefillSteadyStateAllocs(t *testing.T) {
	s := allocTestStation(t, Config{MaxBatch: 8, Transfer: disaggTestTransfer}, 16)
	s.role = RolePrefill
	reqs := allocTestReqs(8)
	cycle := func() {
		for _, r := range reqs {
			s.enqueue(queued{req: r})
		}
		s.nextAt = 0
		s.advance(math.Inf(1), nil)
		if s.err != nil {
			t.Fatal(s.err)
		}
		if s.queueLen() != 0 || len(s.xfers) != len(reqs) {
			t.Fatal("cycle did not hand off every request")
		}
		s.xfers = s.xfers[:0] // the kernel's collectTransfers does this
	}
	cycle()
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Errorf("prefill steady-state station cycle allocates %.1f times, want 0", avg)
	}
}

// TestStationStepDecodeSteadyStateAllocs gates the decode-pool
// station path the same way: admitting kv-transfer deliveries
// (carried lifecycles, generated already 1) must reuse the free list.
func TestStationStepDecodeSteadyStateAllocs(t *testing.T) {
	s := allocTestStation(t, Config{MaxBatch: 8, Transfer: disaggTestTransfer}, 16)
	s.role = RoleDecode
	base := allocTestReqs(8)
	cycle := func() {
		for _, r := range base {
			s.enqueue(queued{req: r, decode: true, carry: RequestStats{
				ID: r.ID, Input: r.Input, Output: r.Output,
				Arrival: r.Arrival, Started: r.Arrival, FirstTok: r.Arrival, TransferS: 1e-5,
			}})
		}
		s.nextAt = 0
		s.advance(math.Inf(1), nil)
		if s.err != nil {
			t.Fatal(s.err)
		}
		if s.queueLen() != 0 || len(s.run) != 0 {
			t.Fatal("cycle did not drain the station")
		}
		s.finished = s.finished[:0]
		s.finHead = 0
	}
	cycle()
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Errorf("decode steady-state station cycle allocates %.1f times, want 0", avg)
	}
}

package llmbench

// One benchmark per reproduced paper artifact: BenchmarkFigNN /
// BenchmarkTabN regenerates that figure or table end to end through
// the simulation engine, so `go test -bench=.` replays the paper's
// whole evaluation and reports how long each figure takes to
// reproduce. Micro-benchmarks for the core mechanisms follow.

import (
	"testing"

	"llmbench/internal/cluster"
	"llmbench/internal/des"
	"llmbench/internal/dtype"
	"llmbench/internal/experiments"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/perplexity"
	"llmbench/internal/sched"
	"llmbench/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1aBatchVsLength(b *testing.B)         { benchExperiment(b, "fig1a") }
func BenchmarkFig1bBlendedTokens(b *testing.B)         { benchExperiment(b, "fig1b") }
func BenchmarkFig2aKVCacheAblation(b *testing.B)       { benchExperiment(b, "fig2a") }
func BenchmarkFig2bKVBlockSize(b *testing.B)           { benchExperiment(b, "fig2b") }
func BenchmarkFig3Quantization(b *testing.B)           { benchExperiment(b, "fig3") }
func BenchmarkFig4aNASModels(b *testing.B)             { benchExperiment(b, "fig4a") }
func BenchmarkFig4bSpeculativeDecoding(b *testing.B)   { benchExperiment(b, "fig4b") }
func BenchmarkFig5aParallelism(b *testing.B)           { benchExperiment(b, "fig5a") }
func BenchmarkFig5bMoEParallelism(b *testing.B)        { benchExperiment(b, "fig5b") }
func BenchmarkFig6TRTLLM7B(b *testing.B)               { benchExperiment(b, "fig6") }
func BenchmarkFig7TRTLLM70B(b *testing.B)              { benchExperiment(b, "fig7") }
func BenchmarkFig8VLLM7B(b *testing.B)                 { benchExperiment(b, "fig8") }
func BenchmarkFig9VLLM70B(b *testing.B)                { benchExperiment(b, "fig9") }
func BenchmarkFig10PerplexityScatterA100(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11DSMIIScaling(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12MixtralFrameworks(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13LlamaCpp7B(b *testing.B)            { benchExperiment(b, "fig13") }
func BenchmarkFig14LlamaCppScaling(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15FrameworksA100(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFig16Power(b *testing.B)                 { benchExperiment(b, "fig16") }
func BenchmarkFig17MI250(b *testing.B)                 { benchExperiment(b, "fig17") }
func BenchmarkFig18SN40L7B(b *testing.B)               { benchExperiment(b, "fig18") }
func BenchmarkFig19SN40L70B(b *testing.B)              { benchExperiment(b, "fig19") }
func BenchmarkFig20Gaudi2(b *testing.B)                { benchExperiment(b, "fig20") }
func BenchmarkFig21TTFT(b *testing.B)                  { benchExperiment(b, "fig21") }
func BenchmarkFig22ITL(b *testing.B)                   { benchExperiment(b, "fig22") }
func BenchmarkFig23Accelerators(b *testing.B)          { benchExperiment(b, "fig23") }
func BenchmarkFig24AcceleratorsByLength(b *testing.B)  { benchExperiment(b, "fig24") }
func BenchmarkFig25PeakThroughput(b *testing.B)        { benchExperiment(b, "fig25") }
func BenchmarkFig29PerplexityScatterH100(b *testing.B) { benchExperiment(b, "fig29") }
func BenchmarkFig30TRTLLMScaling(b *testing.B)         { benchExperiment(b, "fig30") }
func BenchmarkFig31VLLMScaling(b *testing.B)           { benchExperiment(b, "fig31") }
func BenchmarkFig32LlamaCpp70B(b *testing.B)           { benchExperiment(b, "fig32") }
func BenchmarkFig33H100Frameworks(b *testing.B)        { benchExperiment(b, "fig33") }
func BenchmarkFig3470BFrameworks(b *testing.B)         { benchExperiment(b, "fig34") }
func BenchmarkFig35MI250VLLM(b *testing.B)             { benchExperiment(b, "fig35") }
func BenchmarkFig36MI250LlamaCpp(b *testing.B)         { benchExperiment(b, "fig36") }
func BenchmarkFig37MI250VLLM70B(b *testing.B)          { benchExperiment(b, "fig37") }
func BenchmarkFig38Gaudi70B(b *testing.B)              { benchExperiment(b, "fig38") }
func BenchmarkTab1Models(b *testing.B)                 { benchExperiment(b, "tab1") }
func BenchmarkTab2Hardware(b *testing.B)               { benchExperiment(b, "tab2") }
func BenchmarkTab3Frameworks(b *testing.B)             { benchExperiment(b, "tab3") }

// Extension experiments (ablations and future-work items; DESIGN.md §4).
func BenchmarkExt1AllDevicePower(b *testing.B)    { benchExperiment(b, "ext1") }
func BenchmarkExt2SpecDecGamma(b *testing.B)      { benchExperiment(b, "ext2") }
func BenchmarkExt3PagedVsMonolithic(b *testing.B) { benchExperiment(b, "ext3") }
func BenchmarkExt4ChunkedPrefill(b *testing.B)    { benchExperiment(b, "ext4") }
func BenchmarkExt5KVHeadNAS(b *testing.B)         { benchExperiment(b, "ext5") }

// --- core mechanism micro-benchmarks -------------------------------------

func BenchmarkEngineRunPoint(b *testing.B) {
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.Spec{Batch: 64, Input: 1024, Output: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineDecodeStep(b *testing.B) {
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DecodeStepSeconds(16, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPagedAllocator(b *testing.B) {
	m := model.MustGet("LLaMA-3-8B")
	b.ReportAllocs()
	b.ResetTimer()
	var seqs [64]kvcache.Seq
	for i := 0; i < b.N; i++ {
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 20*(1<<30))
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 64; s++ {
			seq, err := alloc.Alloc(512)
			if err != nil {
				b.Fatal(err)
			}
			seqs[s] = seq
		}
		for tok := 513; tok < 640; tok++ {
			for _, seq := range seqs {
				if err := alloc.Extend(seq, tok); err != nil {
					b.Fatal(err)
				}
			}
		}
		for _, seq := range seqs {
			alloc.Free(seq)
		}
	}
}

func BenchmarkContinuousServing(b *testing.B) {
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.MustGet("LLaMA-3-8B")
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 5, Requests: 100, RatePerSec: 10, InputMean: 512, OutputMean: 128, LengthJitter: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 18*(1<<30))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sched.Serve(sched.Config{
			Engine: eng, Policy: sched.Continuous, MaxBatch: 32, Alloc: alloc,
		}, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerplexityEvaluation(b *testing.B) {
	ev, err := perplexity.NewEvaluator()
	if err != nil {
		b.Fatal(err)
	}
	// Warm the corpus; benchmark a fresh capacity each iteration by
	// alternating models.
	names := perplexity.ScatterModels()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ModelPerplexity(names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExt6RouterAblation(b *testing.B) { benchExperiment(b, "ext6") }
func BenchmarkExt7BatchAutotune(b *testing.B)  { benchExperiment(b, "ext7") }

func BenchmarkExt8PrefixSharing(b *testing.B) { benchExperiment(b, "ext8") }
func BenchmarkExt9Autoscaling(b *testing.B)   { benchExperiment(b, "ext9") }

// --- decode-pricing / coalescing benchmarks ------------------------------
//
// The three benchmarks below are the perf trajectory of the
// O(state-change) serving work (BENCH.md): a long-output engine point
// and the two serving simulators on a ≥1024-token-output trace.

// BenchmarkRunLongOutput is a single long-generation benchmark point:
// 2048 output tokens, the workload whose decode loop dominated Run
// before range pricing.
func BenchmarkRunLongOutput(b *testing.B) {
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.Spec{Batch: 8, Input: 256, Output: 2048}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// longOutputTrace is the serving workload of the coalescing
// benchmarks: bursty arrivals generating ≥ 1024 tokens each, so almost
// all simulated iterations are identical decode steps.
func longOutputTrace(b *testing.B, requests int) []workload.Request {
	b.Helper()
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 11, Requests: requests, RatePerSec: 0.5,
		InputMean: 256, OutputMean: 1024, LengthJitter: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return reqs
}

func BenchmarkServeContinuous(b *testing.B) {
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.MustGet("LLaMA-3-8B")
	reqs := longOutputTrace(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 30*(1<<30))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sched.Serve(sched.Config{
			Engine: eng, Policy: sched.Continuous, MaxBatch: 16, Alloc: alloc,
		}, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeCluster(b *testing.B) {
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.MustGet("LLaMA-3-8B")
	reqs := longOutputTrace(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replicas := make([]cluster.Replica, 4)
		for j := range replicas {
			alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 30*(1<<30))
			if err != nil {
				b.Fatal(err)
			}
			replicas[j] = cluster.Replica{Engine: eng, Alloc: alloc}
		}
		if _, err := cluster.Serve(cluster.Config{
			Replicas: replicas, Policy: cluster.LeastLoaded, MaxBatch: 16,
		}, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClusterTrace is the shared workload of the replica-scaling
// benchmarks: bursty long-output arrivals sized so 8 and 32 replicas
// both stay busy. Fixed per replica count so numbers stay comparable
// across commits.
func benchClusterTrace(b *testing.B, requests int, rate float64) []workload.Request {
	b.Helper()
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 17, Requests: requests, RatePerSec: rate,
		InputMean: 256, OutputMean: 1024, LengthJitter: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return reqs
}

func benchServeClusterN(b *testing.B, replicas int, reqs []workload.Request, cfg cluster.Config) {
	b.Helper()
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.MustGet("LLaMA-3-8B")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps := make([]cluster.Replica, replicas)
		for j := range reps {
			alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 30*(1<<30))
			if err != nil {
				b.Fatal(err)
			}
			reps[j] = cluster.Replica{Engine: eng, Alloc: alloc}
		}
		cfg.Replicas = reps
		if _, err := cluster.Serve(cfg, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCluster8/32 track the cluster DES at deployment scale
// (the autoscaling/router experiments the kernel exists to unlock).
// The Parallel variants advance replicas on per-replica goroutines
// between arrival barriers — byte-identical Stats, wall-clock bounded
// by GOMAXPROCS (on a single-core host they only measure barrier
// overhead).
func BenchmarkServeCluster8(b *testing.B) {
	benchServeClusterN(b, 8, benchClusterTrace(b, 128, 2),
		cluster.Config{Policy: cluster.LeastLoaded, MaxBatch: 16})
}

func BenchmarkServeCluster8Parallel(b *testing.B) {
	benchServeClusterN(b, 8, benchClusterTrace(b, 128, 2),
		cluster.Config{Policy: cluster.LeastLoaded, MaxBatch: 16, Parallelism: 8})
}

func BenchmarkServeCluster32(b *testing.B) {
	benchServeClusterN(b, 32, benchClusterTrace(b, 384, 8),
		cluster.Config{Policy: cluster.LeastLoaded, MaxBatch: 16})
}

func BenchmarkServeCluster32Parallel(b *testing.B) {
	benchServeClusterN(b, 32, benchClusterTrace(b, 384, 8),
		cluster.Config{Policy: cluster.LeastLoaded, MaxBatch: 16, Parallelism: 8})
}

// BenchmarkServeClusterStatic tracks multi-replica static batching on
// the cluster kernel — the policy × replicas grid point the static
// station port unlocked. One batch run is one DES event, so the cost
// is dominated by engine.Run pricing per collected batch.
func BenchmarkServeClusterStatic(b *testing.B) {
	benchServeClusterN(b, 8, benchClusterTrace(b, 128, 2),
		cluster.Config{Policy: cluster.LeastLoaded, MaxBatch: 16, Static: true})
}

// BenchmarkServeClusterDisagg tracks the disaggregated topology at the
// same fleet scale as BenchmarkServeCluster8: 2 prefill + 6 decode
// replicas, every request crossing the pool boundary as a kv-transfer
// event. The delta against the aggregated row is the price of the
// phase-split lifecycle (transfer events, horizon-bounded barriers).
func BenchmarkServeClusterDisagg(b *testing.B) {
	m := model.MustGet("LLaMA-3-8B")
	benchServeClusterN(b, 8, benchClusterTrace(b, 128, 2),
		cluster.Config{
			Policy: cluster.LeastLoaded, MaxBatch: 16, PrefillReplicas: 2,
			Transfer: des.TransferCost{
				BlockTokens: 16, BytesPerToken: m.KVBytesPerToken(dtype.FP16),
				GBPerS: 600, LatencyS: 3e-6,
			},
		})
}

// BenchmarkServeClusterPrefix tracks prefix-affinity routing over
// tiered allocators with chunked prefill — the full shared-prefix
// serving stack (PrefixPaged + host tier + Prefix router + fused
// slices) at the same fleet scale as BenchmarkServeCluster8. The
// allocs/op delta against that row is the price of the tier and the
// router's replica scan.
func BenchmarkServeClusterPrefix(b *testing.B) {
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.MustGet("LLaMA-3-8B")
	const prefixTokens = 2048
	reqs, err := workload.ChatTrace(workload.ChatTraceConfig{
		Seed: 17, Requests: 256, RatePerSec: 12, BurstFactor: 1,
		InputMedian: 256, OutputMedian: 64, PrefixTokens: prefixTokens,
		Sigma: 0.3, MaxLen: 8192,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps := make([]cluster.Replica, 8)
		for j := range reps {
			gpu, err := kvcache.NewPrefixPaged(16, prefixTokens, m.KVBytesPerToken(dtype.FP16), 30*(1<<30))
			if err != nil {
				b.Fatal(err)
			}
			alloc, err := kvcache.NewTiered(gpu, 1<<30, kvcache.HostLink{GBPerS: 32, LatencyS: 5e-6})
			if err != nil {
				b.Fatal(err)
			}
			reps[j] = cluster.Replica{Engine: eng, Alloc: alloc}
		}
		if _, err := cluster.Serve(cluster.Config{
			Replicas: reps, Policy: cluster.Prefix, MaxBatch: 16,
			ChunkedPrefill: true, PrefillChunk: 256,
		}, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeClusterMillion is the streaming-stats smoke row: a
// million-request day replayed through an 8-replica fleet with
// incremental aggregation (cluster.Config.Streaming), so stats memory
// stays O(1) in trace length — allocs/op here are the kernel's own,
// not a million-entry ledger plus sort. BenchmarkServeClusterMillionExact
// is the ledgered reference the memory delta is measured against.
func benchServeClusterMillion(b *testing.B, streaming bool, parallelism int) {
	b.Helper()
	if testing.Short() {
		// The general bench smoke runs -short; the million-request rows
		// get their own dedicated CI invocation.
		b.Skip("million-request benchmark skipped in -short mode")
	}
	// Short chat turns at a rate the fleet sustains (~50 req/s against
	// ~200 req/s of capacity), so the day is queueing, not meltdown.
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 17, Requests: 1_000_000, RatePerSec: 50,
		InputMean: 256, OutputMean: 64, LengthJitter: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.MustGet("LLaMA-3-8B")
	// One arena across iterations, as a sweep worker would hold it:
	// after the first run the kernel's station shells, free lists, and
	// event buffers are recycled instead of reallocated.
	var scratch des.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps := make([]cluster.Replica, 8)
		for j := range reps {
			alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 30*(1<<30))
			if err != nil {
				b.Fatal(err)
			}
			reps[j] = cluster.Replica{Engine: eng, Alloc: alloc}
		}
		st, err := cluster.Serve(cluster.Config{
			Replicas: reps, Policy: cluster.LeastLoaded, MaxBatch: 32, Streaming: streaming,
			Parallelism: parallelism, Scratch: &scratch,
		}, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if st.Completed != len(reqs) {
			b.Fatalf("completed %d/%d", st.Completed, len(reqs))
		}
	}
}

func BenchmarkServeClusterMillion(b *testing.B)      { benchServeClusterMillion(b, true, 0) }
func BenchmarkServeClusterMillionExact(b *testing.B) { benchServeClusterMillion(b, false, 0) }

// BenchmarkServeClusterMillionParallel is the multicore row: the same
// million-request day advanced on 4 replica goroutines between arrival
// barriers. Byte-identical Stats to the serial row by the cluster
// determinism contract; run it with GOMAXPROCS=4 on a multicore host
// to measure the speedup (a single-core host serialises the workers
// and only pays the barrier overhead).
func BenchmarkServeClusterMillionParallel(b *testing.B) { benchServeClusterMillion(b, true, 4) }

// BenchmarkServeAutoscale is the bench-smoke guard for the dynamic
// capacity path (bursty chat load, replicas 1..8).
func BenchmarkServeAutoscale(b *testing.B) {
	eng, err := NewEngine(System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.MustGet("Mistral-7B")
	factory := func() (cluster.Replica, error) {
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 16*(1<<30))
		if err != nil {
			return cluster.Replica{}, err
		}
		return cluster.Replica{Engine: eng, Alloc: alloc}, nil
	}
	reqs, err := workload.ChatTrace(workload.ChatTraceConfig{
		Seed: 61, Requests: 300, RatePerSec: 15, BurstFactor: 6, BurstLenS: 4,
		InputMedian: 512, OutputMedian: 128, Sigma: 0.7, MaxLen: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.ServeAutoscale(cluster.Config{MaxBatch: 16}, cluster.Autoscale{
			Factory: factory, Min: 1, Max: 8, UpOutstanding: 12, DownIdleS: 3, CooldownS: 1,
		}, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSweep tracks the serving-capacity grid end to end: a
// rate × replicas × policy ServeSweep on one cached engine
// (Parallelism 1 so numbers are comparable across hosts).
func BenchmarkServeSweep(b *testing.B) {
	cfg := ServeSweepConfig{
		System:   System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		MaxBatch: 16,
		Seed:     23, Requests: 60, InputMean: 256, OutputMean: 64,
	}
	grid := ServeGrid{
		Rates:       []float64{2, 6},
		Replicas:    []int{1, 2},
		Policies:    []ServePolicy{{}, {LeastLoaded: true}},
		Parallelism: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := ServeSweep(cfg, grid)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkServeSweepStatic is the static-policy serving grid on
// bursty chat traffic: static and static/least-loaded fleets across
// replica counts and burst factors — the cube the station port and
// the trace axes completed (LeanStats, as a big grid would run).
func BenchmarkServeSweepStatic(b *testing.B) {
	cfg := ServeSweepConfig{
		System:   System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		MaxBatch: 16,
		Seed:     23, Requests: 60, InputMean: 256, OutputMean: 64,
		LeanStats: true,
	}
	grid := ServeGrid{
		Rates:        []float64{2, 6},
		Replicas:     []int{1, 2},
		Policies:     []ServePolicy{{Static: true}, {Static: true, LeastLoaded: true}},
		BurstFactors: []float64{1, 4},
		Parallelism:  1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := ServeSweep(cfg, grid)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// --- concurrency / caching benchmarks ------------------------------------
//
// BenchmarkReportSerial vs BenchmarkReportParallel tracks the anchor
// report's fan-out speedup (the -j flag); the Sweep pair tracks what
// the engine cache saves over rebuilding the engine per point.

func benchReport(b *testing.B, parallelism int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Report(parallelism); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReportSerial(b *testing.B)   { benchReport(b, 1) }
func BenchmarkReportParallel(b *testing.B) { benchReport(b, 4) }

// Parallelism 1 so the pair below differs only in engine
// construction: the cached variant builds once, the uncached baseline
// rebuilds per point.
var benchGrid = Grid{
	Batches:     []int{1, 8, 16, 32, 64},
	Lengths:     []int{128, 256, 512, 1024, 2048},
	Parallelism: 1,
}

// BenchmarkSweepEngineCache runs the paper's full 25-point grid with
// the engine built once through the shared cache.
func BenchmarkSweepEngineCache(b *testing.B) {
	sys := System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := Sweep(sys, benchGrid)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkSweepUncachedEngines is the pre-pool baseline: the same
// grid with a fresh NewEngine at every point, paying catalog lookup +
// engine construction per point (what Run did before the cache).
func BenchmarkSweepUncachedEngines(b *testing.B) {
	sys := System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range benchGrid.Lengths {
			for _, bs := range benchGrid.Batches {
				eng, err := NewEngine(sys)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(workload.Spec{Batch: bs, Input: l, Output: l}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

package llmbench_test

import (
	"fmt"

	"llmbench"
)

// ExampleRun benchmarks one point and prints the paper's metrics. The
// simulator is deterministic, so the output is stable.
func ExampleRun() {
	res, err := llmbench.Run(
		llmbench.System{Model: "LLaMA-2-7B", Device: "A100", Framework: "TRT-LLM"},
		llmbench.Workload{Batch: 1, Input: 128, Output: 128},
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput: %.0f tokens/s\n", res.Throughput)
	fmt.Printf("memory bound: %v\n", res.DecodeBound)
	// Output:
	// throughput: 204 tokens/s
	// memory bound: memory
}

// ExampleExplain attributes a benchmark point's time to mechanisms.
func ExampleExplain() {
	bd, err := llmbench.Explain(
		llmbench.System{Model: "LLaMA-3-8B", Device: "H100", Framework: "TRT-LLM"},
		llmbench.Workload{Batch: 64, Input: 1024, Output: 1024},
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decode memory bound: %v\n", bd.Decode.MemoryBound)
	fmt.Printf("KV read exceeds compute wall: %v\n", bd.Decode.KVReadS > bd.Decode.ComputeWall)
	// Output:
	// decode memory bound: true
	// KV read exceeds compute wall: true
}

// ExampleRunExperiment regenerates one of the paper's tables.
func ExampleRunExperiment() {
	res, err := llmbench.RunExperiment("tab3")
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Markdown)
	// Output:
	// ### tab3 — Table III: Summary of inference frameworks evaluated
	//
	// | Framework | A100 | H100 | GH200 | MI250 | Gaudi2 |
	// |---|---|---|---|---|---|
	// | vLLM | Yes | Yes | Yes | Yes | Yes |
	// | llama.cpp | Yes | Yes | Yes | Yes | No |
	// | TRT-LLM | Yes | Yes | Yes | No | No |
	// | DS-MII | Yes | No | No | No | No |
}

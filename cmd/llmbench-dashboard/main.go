// Command llmbench-dashboard serves the interactive dashboard: a
// browser UI that regenerates and charts every reproduced figure of
// the paper (the open-source artifact the paper ships alongside its
// results).
//
// Usage:
//
//	llmbench-dashboard [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"llmbench/internal/dashboard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	fmt.Printf("LLM-Inference-Bench dashboard on http://localhost%s\n", *addr)
	if err := http.ListenAndServe(*addr, dashboard.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "llmbench-dashboard:", err)
		os.Exit(1)
	}
}

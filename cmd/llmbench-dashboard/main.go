// Command llmbench-dashboard serves the interactive dashboard: a
// browser UI that regenerates and charts every reproduced figure of
// the paper (the open-source artifact the paper ships alongside its
// results).
//
// Usage:
//
//	llmbench-dashboard [-addr :8080] [-j N]
//
// -j bounds the worker pool interactive regeneration fans out on
// (custom sweeps, /api/run?id=all); values below 1 mean every core.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"llmbench/internal/dashboard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallelism := flag.Int("j", 0, "regeneration workers (<1 = all cores)")
	flag.Parse()
	url := *addr
	if strings.HasPrefix(url, ":") {
		url = "localhost" + url
	}
	fmt.Printf("LLM-Inference-Bench dashboard on http://%s\n", url)
	if err := http.ListenAndServe(*addr, dashboard.Handler(*parallelism)); err != nil {
		fmt.Fprintln(os.Stderr, "llmbench-dashboard:", err)
		os.Exit(1)
	}
}

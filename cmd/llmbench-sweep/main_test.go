package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 16,32 ,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
}

func TestParseIntsSingle(t *testing.T) {
	got, err := parseInts("1024")
	if err != nil || len(got) != 1 || got[0] != 1024 {
		t.Fatalf("parseInts(%q) = %v, %v", "1024", got, err)
	}
}

func TestParseList(t *testing.T) {
	got := parseList(" A100, H100 ,MI300X")
	want := []string{"A100", "H100", "MI300X"}
	if len(got) != len(want) {
		t.Fatalf("parseList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseList = %v", got)
		}
	}
	if parseList("") != nil {
		t.Error("empty list must leave the axis unset")
	}
}

func TestParseSchemes(t *testing.T) {
	got, err := parseSchemes("fp16:fp16, int8:fp8 ,fp8")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ w, kv string }{{"fp16", "fp16"}, {"int8", "fp8"}, {"fp8", "fp8"}}
	if len(got) != len(want) {
		t.Fatalf("parseSchemes = %v", got)
	}
	for i, w := range want {
		if got[i].Weights != w.w || got[i].KV != w.kv {
			t.Errorf("scheme %d = %v, want %v", i, got[i], w)
		}
	}
	for _, bad := range []string{"", "fp16:", ":fp8", "fp16,,int8"} {
		if got, err := parseSchemes(bad); err == nil {
			t.Errorf("parseSchemes(%q) = %v, want error", bad, got)
		}
	}
}

func TestParseIntsErrors(t *testing.T) {
	cases := []string{
		"1,x,3", // non-numeric element
		"1,,2",  // empty element between commas
		"",      // empty string (splits to one empty element)
		"x",     // single non-numeric
		",",     // only separators
		"1,2,",  // trailing comma
	}
	for _, in := range cases {
		if got, err := parseInts(in); err == nil {
			t.Errorf("parseInts(%q) = %v, want error", in, got)
		}
	}
}

package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 16,32 ,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
	if _, err := parseInts("1,x,3"); err == nil {
		t.Error("bad list must fail")
	}
}

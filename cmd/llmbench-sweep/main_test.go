package main

import (
	"math"
	"strings"
	"testing"

	"llmbench"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("batches", "1, 16,32 ,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
}

func TestParseIntsSingle(t *testing.T) {
	got, err := parseInts("lengths", "1024")
	if err != nil || len(got) != 1 || got[0] != 1024 {
		t.Fatalf("parseInts(%q) = %v, %v", "1024", got, err)
	}
}

func TestParseList(t *testing.T) {
	got, err := parseList("devices", " A100, H100 ,MI300X")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A100", "H100", "MI300X"}
	if len(got) != len(want) {
		t.Fatalf("parseList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseList = %v", got)
		}
	}
	if got, err := parseList("devices", ""); got != nil || err != nil {
		t.Error("empty list must leave the axis unset without error")
	}
}

// TestParseListRejectsEmptyElements: "-devices A100,,H100" used to
// silently drop the empty element; it must be a flag-parse error now.
func TestParseListRejectsEmptyElements(t *testing.T) {
	cases := []string{"A100,,H100", ",A100", "A100,", ",", " , "}
	for _, in := range cases {
		if got, err := parseList("devices", in); err == nil {
			t.Errorf("parseList(%q) = %v, want error", in, got)
		} else if !strings.Contains(err.Error(), "devices") {
			t.Errorf("parseList(%q) error %v must name the flag", in, err)
		}
	}
}

func TestParseSchemes(t *testing.T) {
	got, err := parseSchemes("fp16:fp16, int8:fp8 ,fp8")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ w, kv string }{{"fp16", "fp16"}, {"int8", "fp8"}, {"fp8", "fp8"}}
	if len(got) != len(want) {
		t.Fatalf("parseSchemes = %v", got)
	}
	for i, w := range want {
		if got[i].Weights != w.w || got[i].KV != w.kv {
			t.Errorf("scheme %d = %v, want %v", i, got[i], w)
		}
	}
	for _, bad := range []string{"", "fp16:", ":fp8", "fp16,,int8"} {
		if got, err := parseSchemes(bad); err == nil {
			t.Errorf("parseSchemes(%q) = %v, want error", bad, got)
		}
	}
}

func TestParseIntsErrors(t *testing.T) {
	cases := []string{
		"1,x,3", // non-numeric element
		"1,,2",  // empty element between commas
		"",      // empty string (splits to one empty element)
		"x",     // single non-numeric
		",",     // only separators
		"1,2,",  // trailing comma
		"0",     // non-positive: batch/length/replica counts must be ≥ 1
		"1,0,2", // non-positive mid-list
		"-4",    // negative
	}
	for _, in := range cases {
		if got, err := parseInts("batches", in); err == nil {
			t.Errorf("parseInts(%q) = %v, want error", in, got)
		}
	}
	// The error must name the flag so "-batches 0" reads as what it is.
	if _, err := parseInts("batches", "0"); err == nil || !strings.Contains(err.Error(), "batches") {
		t.Errorf("parseInts error %v must name the flag", err)
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("rates", "0.5, 10 ,40")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 10, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseFloats = %v", got)
		}
	}
	for _, bad := range []string{"", "x", "0", "-1", "1,,2", "NaN", "Inf", "1,"} {
		if got, err := parseFloats("rates", bad); err == nil {
			t.Errorf("parseFloats(%q) = %v, want error", bad, got)
		}
	}
}

func TestParsePolicies(t *testing.T) {
	got, err := parsePolicies("continuous, continuous:ll ,static,autoscale,ll:auto,static:ll,static:autoscale")
	if err != nil {
		t.Fatal(err)
	}
	want := []llmbench.ServePolicy{
		{},
		{LeastLoaded: true},
		{Static: true},
		{Autoscale: true},
		{LeastLoaded: true, Autoscale: true},
		{Static: true, LeastLoaded: true},
		{Static: true, Autoscale: true},
	}
	if len(got) != len(want) {
		t.Fatalf("parsePolicies = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("policy %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "bogus", "continuous:,ll", ","} {
		if got, err := parsePolicies(bad); err == nil {
			t.Errorf("parsePolicies(%q) = %v, want error", bad, got)
		}
	}
}

// TestParsePoliciesDisagg: the -policies axis accepts topology tokens
// — disagg/<p>:<d> pool splits in either separator style — and
// rejects malformed splits and illegal compositions at flag-parse
// time, naming the flag.
func TestParsePoliciesDisagg(t *testing.T) {
	got, err := parsePolicies("disagg/1:3, ll:disagg/2:6 ,static/rr,aggregated")
	if err != nil {
		t.Fatal(err)
	}
	want := []llmbench.ServePolicy{
		{PrefillPool: 1, DecodePool: 3},
		{LeastLoaded: true, PrefillPool: 2, DecodePool: 6},
		{Static: true},
		{},
	}
	if len(got) != len(want) {
		t.Fatalf("parsePolicies = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("policy %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	bad := []string{
		"disagg/2:6:autoscale", // autoscale does not compose with disagg
		"static:disagg/1:3",    // static does not compose with disagg
		"disagg/0:3",           // zero share
		"disagg/1",             // missing decode share
		"disagg/a:b",           // non-numeric shares
	}
	for _, in := range bad {
		if got, err := parsePolicies(in); err == nil {
			t.Errorf("parsePolicies(%q) = %v, want error", in, got)
		} else if !strings.Contains(err.Error(), "-policies") {
			t.Errorf("parsePolicies(%q) error %v must name the flag", in, err)
		}
	}
}

// TestValidateSLO: -slo must be rejected at parse time — a NaN SLO
// would otherwise qualify nothing while `NaN > slo` comparisons stay
// silently false — and the error must name the flag.
func TestValidateSLO(t *testing.T) {
	for _, ok := range []float64{0, 0.5, 6, 1e6} {
		if err := validateSLO(ok); err != nil {
			t.Errorf("validateSLO(%v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := validateSLO(bad); err == nil {
			t.Errorf("validateSLO(%v) must fail", bad)
		} else if !strings.Contains(err.Error(), "-slo") {
			t.Errorf("validateSLO(%v) error %v must name the -slo flag", bad, err)
		}
	}
}

func TestParseMixes(t *testing.T) {
	got, err := parseMixes("512:128, 2048:256 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []llmbench.LengthMix{{Input: 512, Output: 128}, {Input: 2048, Output: 256}}
	if len(got) != len(want) {
		t.Fatalf("parseMixes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mix %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "512", "512:", ":128", "0:128", "512:-1", "a:b", "512:128,,256:64"} {
		if got, err := parseMixes(bad); err == nil {
			t.Errorf("parseMixes(%q) = %v, want error", bad, got)
		}
	}
}

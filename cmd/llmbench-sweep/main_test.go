package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 16,32 ,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
}

func TestParseIntsSingle(t *testing.T) {
	got, err := parseInts("1024")
	if err != nil || len(got) != 1 || got[0] != 1024 {
		t.Fatalf("parseInts(%q) = %v, %v", "1024", got, err)
	}
}

func TestParseIntsErrors(t *testing.T) {
	cases := []string{
		"1,x,3", // non-numeric element
		"1,,2",  // empty element between commas
		"",      // empty string (splits to one empty element)
		"x",     // single non-numeric
		",",     // only separators
		"1,2,",  // trailing comma
	}
	for _, in := range cases {
		if got, err := parseInts(in); err == nil {
			t.Errorf("parseInts(%q) = %v, want error", in, got)
		}
	}
}

// Command llmbench-sweep runs ad-hoc parameter sweeps outside the
// paper's fixed figures: pick a model and sweep batch sizes, sequence
// lengths, and optionally devices, frameworks, and quantization
// schemes in one call, printing a Markdown table of throughput, TTFT,
// ITL, and power.
//
// Points are evaluated concurrently (-j bounds the workers, 0 = all
// cores) but always print in grid order, so output is identical at
// any parallelism.
//
// Examples:
//
//	llmbench-sweep -model LLaMA-3-8B -device H100 -framework TRT-LLM \
//	    -batches 1,8,16,32,64 -lengths 128,1024 -tp 1 -j 4
//	llmbench-sweep -model LLaMA-3-8B -devices A100,H100,MI300X \
//	    -frameworks vLLM,TRT-LLM -batches 16 -lengths 1024
//	llmbench-sweep -model LLaMA-3-8B -device H100 -framework TRT-LLM \
//	    -schemes fp16:fp16,fp8:fp8,int8:fp8 -batches 16 -lengths 1024
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"llmbench"
)

func main() {
	var (
		modelName  = flag.String("model", "LLaMA-3-8B", "model name (see 'llmbench catalog')")
		device     = flag.String("device", "A100", "accelerator name")
		fw         = flag.String("framework", "vLLM", "framework name")
		tp         = flag.Int("tp", 1, "tensor-parallel degree")
		pp         = flag.Int("pp", 1, "pipeline-parallel degree")
		ep         = flag.Int("ep", 1, "expert-parallel degree")
		weights    = flag.String("weights", "", "weight precision (default fp16)")
		kv         = flag.String("kv", "", "KV-cache precision (default fp16)")
		batches    = flag.String("batches", "1,16,32,64", "comma-separated batch sizes")
		lengths    = flag.String("lengths", "1024", "comma-separated input/output lengths")
		devices    = flag.String("devices", "", "comma-separated device axis (overrides -device per point)")
		frameworks = flag.String("frameworks", "", "comma-separated framework axis (overrides -framework per point)")
		schemes    = flag.String("schemes", "", "comma-separated weights:kv scheme axis, e.g. fp16:fp16,int8:fp8")
		j          = flag.Int("j", 0, "sweep parallelism (0 = all cores)")
	)
	flag.Parse()

	bs, err := parseInts(*batches)
	if err != nil {
		fatal(err)
	}
	ls, err := parseInts(*lengths)
	if err != nil {
		fatal(err)
	}
	grid := llmbench.Grid{Batches: bs, Lengths: ls, Parallelism: *j}
	grid.Devices = parseList(*devices)
	grid.Frameworks = parseList(*frameworks)
	if *schemes != "" {
		grid.Schemes, err = parseSchemes(*schemes)
		if err != nil {
			fatal(err)
		}
	}
	sys := llmbench.System{
		Model: *modelName, Device: *device, Framework: *fw,
		TP: *tp, PP: *pp, EP: *ep, Weights: *weights, KV: *kv,
	}
	pts, err := llmbench.Sweep(sys, grid)
	if err != nil {
		fatal(err)
	}
	axes := len(grid.Devices) > 0 || len(grid.Frameworks) > 0 || len(grid.Schemes) > 0
	if axes {
		fmt.Printf("### %s ×%d sweep\n\n", *modelName, (*tp)*(*pp)*(*ep))
		fmt.Println("| Device | Framework | W/KV | Batch | Length | Throughput (tok/s) | TTFT (s) | ITL (ms) | Power (W) | tok/s/W |")
		fmt.Println("|---|---|---|---|---|---|---|---|---|---|")
	} else {
		fmt.Printf("### %s on %s×%d via %s\n\n", *modelName, *device, (*tp)*(*pp)*(*ep), *fw)
		fmt.Println("| Batch | Length | Throughput (tok/s) | TTFT (s) | ITL (ms) | Power (W) | tok/s/W |")
		fmt.Println("|---|---|---|---|---|---|---|")
	}
	for _, p := range pts {
		prefix := ""
		if axes {
			prefix = fmt.Sprintf("| %s | %s | %s/%s ", p.Device, p.Framework,
				orFP16(p.Scheme.Weights), orFP16(p.Scheme.KV))
		}
		if p.Err != nil {
			fmt.Printf("%s| %d | %d | — (%v) | | | | |\n", prefix, p.Batch, p.Length, p.Err)
			continue
		}
		res := p.Result
		fmt.Printf("%s| %d | %d | %.0f | %.3f | %.3f | %.0f | %.2f |\n",
			prefix, p.Batch, p.Length, res.Throughput, res.TTFTSeconds, res.ITLSeconds*1000,
			res.TotalPowerWatts, res.TokensPerSecPerW)
	}
}

func orFP16(s string) string {
	if s == "" {
		return "fp16"
	}
	return s
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseList splits a comma-separated axis; empty input means the axis
// is unset.
func parseList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if v := strings.TrimSpace(p); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// parseSchemes parses "weights:kv" pairs ("fp16:fp16,int8:fp8"); a
// bare precision applies to both weights and KV.
func parseSchemes(s string) ([]llmbench.Scheme, error) {
	parts := strings.Split(s, ",")
	out := make([]llmbench.Scheme, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("bad scheme list %q: empty element", s)
		}
		w, kv, found := strings.Cut(p, ":")
		if !found {
			kv = w
		}
		if w == "" || kv == "" {
			return nil, fmt.Errorf("bad scheme %q: want weights:kv", p)
		}
		out = append(out, llmbench.Scheme{Weights: w, KV: kv})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmbench-sweep:", err)
	os.Exit(1)
}

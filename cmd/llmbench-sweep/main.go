// Command llmbench-sweep runs ad-hoc parameter sweeps outside the
// paper's fixed figures: pick a model/device/framework and sweep batch
// sizes and sequence lengths, printing a Markdown table of throughput,
// TTFT, ITL, and power.
//
// Points are evaluated concurrently (-j bounds the workers, 0 = all
// cores) but always print in grid order, so output is identical at
// any parallelism.
//
// Example:
//
//	llmbench-sweep -model LLaMA-3-8B -device H100 -framework TRT-LLM \
//	    -batches 1,8,16,32,64 -lengths 128,1024 -tp 1 -j 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"llmbench"
)

func main() {
	var (
		modelName = flag.String("model", "LLaMA-3-8B", "model name (see 'llmbench catalog')")
		device    = flag.String("device", "A100", "accelerator name")
		fw        = flag.String("framework", "vLLM", "framework name")
		tp        = flag.Int("tp", 1, "tensor-parallel degree")
		pp        = flag.Int("pp", 1, "pipeline-parallel degree")
		ep        = flag.Int("ep", 1, "expert-parallel degree")
		weights   = flag.String("weights", "", "weight precision (default fp16)")
		kv        = flag.String("kv", "", "KV-cache precision (default fp16)")
		batches   = flag.String("batches", "1,16,32,64", "comma-separated batch sizes")
		lengths   = flag.String("lengths", "1024", "comma-separated input/output lengths")
		j         = flag.Int("j", 0, "sweep parallelism (0 = all cores)")
	)
	flag.Parse()

	bs, err := parseInts(*batches)
	if err != nil {
		fatal(err)
	}
	ls, err := parseInts(*lengths)
	if err != nil {
		fatal(err)
	}
	sys := llmbench.System{
		Model: *modelName, Device: *device, Framework: *fw,
		TP: *tp, PP: *pp, EP: *ep, Weights: *weights, KV: *kv,
	}
	pts, err := llmbench.Sweep(sys, llmbench.Grid{Batches: bs, Lengths: ls, Parallelism: *j})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("### %s on %s×%d via %s\n\n", *modelName, *device, (*tp)*(*pp)*(*ep), *fw)
	fmt.Println("| Batch | Length | Throughput (tok/s) | TTFT (s) | ITL (ms) | Power (W) | tok/s/W |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, p := range pts {
		if p.Err != nil {
			fmt.Printf("| %d | %d | — (%v) | | | | |\n", p.Batch, p.Length, p.Err)
			continue
		}
		res := p.Result
		fmt.Printf("| %d | %d | %.0f | %.3f | %.3f | %.0f | %.2f |\n",
			p.Batch, p.Length, res.Throughput, res.TTFTSeconds, res.ITLSeconds*1000,
			res.TotalPowerWatts, res.TokensPerSecPerW)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmbench-sweep:", err)
	os.Exit(1)
}

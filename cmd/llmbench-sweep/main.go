// Command llmbench-sweep runs ad-hoc parameter sweeps outside the
// paper's fixed figures: pick a model and sweep batch sizes, sequence
// lengths, and optionally devices, frameworks, and quantization
// schemes in one call, printing a Markdown table of throughput, TTFT,
// ITL, and power.
//
// With -serve the sweep turns into a serving-capacity grid on the
// discrete-event simulators: arrival rates × replica counts × batch
// caps × scheduling policies — optionally × trace shape (-bursts
// burst factors and -mixes input:output length medians switch the
// traffic from plain Poisson to bursty heavy-tailed chat arrivals) —
// printing throughput, latency and queue-delay percentiles, and
// preemptions per point. Policy entries also select the serving
// topology: disagg/<p>:<d> splits each point's fleet into prefill and
// decode pools in that ratio, with KV hand-offs priced over the
// device interconnect, and adds a mean transfer-delay column.
//
// -prefix-shares adds a shared-system-prompt axis: each share s in
// [0, 1) prepends a fleet-wide prefix of s×(input median) tokens to
// every request and equips every replica with a tiered prefix cache
// (GPU prefix blocks, CPU offload tier sized by -hostkv, restores
// priced over the device's host link). The prefix routing policy
// (-policies ...,prefix) steers arrivals to cache-warm replicas; the
// table gains prefix-share and cache-hit-rate columns.
//
// Points are evaluated concurrently (-j bounds the workers, 0 = all
// cores) but always print in grid order, so output is identical at
// any parallelism.
//
// Examples:
//
//	llmbench-sweep -model LLaMA-3-8B -device H100 -framework TRT-LLM \
//	    -batches 1,8,16,32,64 -lengths 128,1024 -tp 1 -j 4
//	llmbench-sweep -model LLaMA-3-8B -devices A100,H100,MI300X \
//	    -frameworks vLLM,TRT-LLM -batches 16 -lengths 1024
//	llmbench-sweep -model LLaMA-3-8B -device H100 -framework TRT-LLM \
//	    -schemes fp16:fp16,fp8:fp8,int8:fp8 -batches 16 -lengths 1024
//	llmbench-sweep -serve -model Mistral-7B -device A100 -framework vLLM \
//	    -rates 5,10,20,40 -replicas 1,2,4 -maxbatches 32 \
//	    -policies continuous:ll,autoscale -requests 200
//	llmbench-sweep -serve -model Mistral-7B -device A100 -framework vLLM \
//	    -rates 10,20 -replicas 2,8 -policies static,continuous \
//	    -bursts 1,4 -mixes 512:128,2048:256
//	llmbench-sweep -serve -model Mistral-7B -device A100 -framework vLLM \
//	    -rates 10,20,40 -replicas 4,8 -policies ll,ll:disagg/1:3 -slo 6
//	llmbench-sweep -serve -model Mistral-7B -device A100 -framework vLLM \
//	    -rates 10,20,40 -replicas 4 -policies rr,ll,prefix \
//	    -prefix-shares 0.5 -mixes 1024:128 -slo 6
//	llmbench-sweep -serve -model Mistral-7B -rates 20 -requests 100000 \
//	    -record day.trace -stream
//	llmbench-sweep -serve -model Mistral-7B -trace day.trace \
//	    -replicas 2,4,8 -policies continuous:ll,static -slo 6 -stream
//
// -record captures the sweep's synthesized trace to a versioned file
// (see TRACES.md); -trace replays a recorded file at every point —
// at its native rate when -rates is absent, rescaled to each rate
// otherwise. -slo prints each configuration's capacity knee, and
// -stream aggregates completions incrementally (P² percentile
// sketches, O(1) memory) for million-request replays.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep (CPU
// samples over the whole run; a heap snapshot after it), so a kernel
// or allocator regression can be diagnosed straight from the
// production command instead of a throwaway harness:
//
//	llmbench-sweep -serve -model Mistral-7B -rates 20,40 -replicas 4 \
//	    -requests 100000 -stream -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"llmbench"
)

func main() {
	var (
		modelName  = flag.String("model", "LLaMA-3-8B", "model name (see 'llmbench catalog')")
		device     = flag.String("device", "A100", "accelerator name")
		fw         = flag.String("framework", "vLLM", "framework name")
		tp         = flag.Int("tp", 1, "tensor-parallel degree")
		pp         = flag.Int("pp", 1, "pipeline-parallel degree")
		ep         = flag.Int("ep", 1, "expert-parallel degree")
		weights    = flag.String("weights", "", "weight precision (default fp16)")
		kv         = flag.String("kv", "", "KV-cache precision (default fp16)")
		batches    = flag.String("batches", "1,16,32,64", "comma-separated batch sizes")
		lengths    = flag.String("lengths", "1024", "comma-separated input/output lengths")
		devices    = flag.String("devices", "", "comma-separated device axis (overrides -device per point)")
		frameworks = flag.String("frameworks", "", "comma-separated framework axis (overrides -framework per point)")
		schemes    = flag.String("schemes", "", "comma-separated weights:kv scheme axis, e.g. fp16:fp16,int8:fp8")
		j          = flag.Int("j", 0, "sweep parallelism (0 = all cores)")

		serve      = flag.Bool("serve", false, "serving-capacity sweep (rates × replicas × policies) instead of offline points")
		rates      = flag.String("rates", "", "comma-separated arrival rates in req/s (required with -serve)")
		replicas   = flag.String("replicas", "1", "comma-separated replica counts (-serve)")
		maxbatches = flag.String("maxbatches", "32", "comma-separated per-replica batch caps (-serve)")
		policies   = flag.String("policies", "continuous",
			"comma-separated policy axis (-serve); each entry joins ':'- or '/'-separated tokens from "+
				"{continuous|static, rr|round-robin|ll|least-loaded|prefix, autoscale, aggregated, disagg/<p>:<d>} — "+
				"static composes with every router and with autoscale (e.g. static:ll, static:autoscale); "+
				"prefix routes to cache-warm replicas (see -prefix-shares) and is mutually exclusive with ll; "+
				"disagg/<p>:<d> splits each point's fleet into prefill and decode pools in that ratio "+
				"(e.g. ll:disagg/1:3) and composes with rr/ll but not static or autoscale")
		bursts = flag.String("bursts", "",
			"comma-separated burst-factor axis ≥ 1 (-serve); setting it (or -mixes) switches traces "+
				"from plain Poisson to bursty heavy-tailed chat arrivals (workload.ChatTrace); 1 = no bursts")
		mixes = flag.String("mixes", "",
			"comma-separated input:output length-median axis (-serve), e.g. 512:128,2048:256; "+
				"setting it (or -bursts) switches traces to heavy-tailed chat arrivals")
		prefixShares = flag.String("prefix-shares", "",
			"comma-separated shared-prefix share axis in [0,1) (-serve), e.g. 0,0.5; each share s "+
				"prepends a fleet-wide system prompt of s×(input median) tokens to every request and "+
				"gives every replica a tiered prefix cache (GPU prefix blocks + CPU offload tier); "+
				"setting it switches traces to chat arrivals and adds prefix-share and hit-rate columns")
		hostKV = flag.Float64("hostkv", 0,
			"per-replica CPU offload tier for demoted prefix blocks in GiB (-serve, with -prefix-shares); "+
				"0 mirrors the device KV budget")
		chunked = flag.Bool("chunked", false,
			"chunked prefill on every replica (-serve): prompts prefill in 512-token slices fused "+
				"into decode iterations, so admission never stalls running requests; pairs with "+
				"-policies prefix (affinity without queueing behind whole prefills); "+
				"rejects static and disagg policy entries per point")
		sigma = flag.Float64("sigma", 0,
			"lognormal length spread for chat traces (-serve, with -bursts/-mixes/-prefix-shares); "+
				"0 = the 0.7 default (heavy chat tails), lower models templated traffic whose tight "+
				"output tail lets prefix-cache routing dominate the tail percentiles")
		requests   = flag.Int("requests", 200, "requests per serving point (-serve)")
		inMean     = flag.Int("inmean", 512, "mean prompt tokens (-serve)")
		outMean    = flag.Int("outmean", 128, "mean generated tokens (-serve)")
		seed       = flag.Uint64("seed", 42, "trace seed (-serve)")
		kvBudget   = flag.Float64("kvbudget", 0, "per-replica KV pool in GiB, 0 = auto (-serve)")
		slo        = flag.Float64("slo", 0, "P99 latency SLO in seconds (-serve); prints each configuration's capacity knee")
		tracePath  = flag.String("trace", "", "replay a recorded trace file at every point (-serve); -rates then rescales it, absent -rates replays at native rate")
		record     = flag.String("record", "", "record the sweep's synthesized trace to this file (-serve); the grid must pin one rate/shape position")
		stream     = flag.Bool("stream", false, "streaming stats (-serve): O(1) memory percentile sketches for million-request points")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (inspect with 'go tool pprof')")
		memprofile = flag.String("memprofile", "", "write an end-of-sweep heap profile to this file (inspect with 'go tool pprof')")
	)
	flag.Parse()
	// -slo is validated here, at parse time, like every list flag: a
	// NaN or infinite SLO would otherwise make every (or no) point
	// "compliant" deep inside the knee fold.
	if err := validateSLO(*slo); err != nil {
		fatal(err)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	sys := llmbench.System{
		Model: *modelName, Device: *device, Framework: *fw,
		TP: *tp, PP: *pp, EP: *ep, Weights: *weights, KV: *kv,
	}
	devAxis, err := parseList("devices", *devices)
	if err != nil {
		fatal(err)
	}
	fwAxis, err := parseList("frameworks", *frameworks)
	if err != nil {
		fatal(err)
	}
	var schemeAxis []llmbench.Scheme
	if *schemes != "" {
		schemeAxis, err = parseSchemes(*schemes)
		if err != nil {
			fatal(err)
		}
	}

	if *serve {
		serveSweep(sys, serveFlags{
			rates: *rates, replicas: *replicas, maxbatches: *maxbatches, policies: *policies,
			bursts: *bursts, mixes: *mixes, prefixShares: *prefixShares,
			devices: devAxis, frameworks: fwAxis, schemes: schemeAxis,
			requests: *requests, inMean: *inMean, outMean: *outMean,
			seed: *seed, kvBudget: *kvBudget, hostKV: *hostKV, j: *j,
			chunked: *chunked, sigma: *sigma,
			slo: *slo, tracePath: *tracePath, record: *record, stream: *stream,
		})
		return
	}

	bs, err := parseInts("batches", *batches)
	if err != nil {
		fatal(err)
	}
	ls, err := parseInts("lengths", *lengths)
	if err != nil {
		fatal(err)
	}
	grid := llmbench.Grid{Batches: bs, Lengths: ls, Parallelism: *j}
	grid.Devices, grid.Frameworks, grid.Schemes = devAxis, fwAxis, schemeAxis
	pts, err := llmbench.Sweep(sys, grid)
	if err != nil {
		fatal(err)
	}
	axes := len(grid.Devices) > 0 || len(grid.Frameworks) > 0 || len(grid.Schemes) > 0
	if axes {
		fmt.Printf("### %s ×%d sweep\n\n", *modelName, (*tp)*(*pp)*(*ep))
		fmt.Println("| Device | Framework | W/KV | Batch | Length | Throughput (tok/s) | TTFT (s) | ITL (ms) | Power (W) | tok/s/W |")
		fmt.Println("|---|---|---|---|---|---|---|---|---|---|")
	} else {
		fmt.Printf("### %s on %s×%d via %s\n\n", *modelName, *device, (*tp)*(*pp)*(*ep), *fw)
		fmt.Println("| Batch | Length | Throughput (tok/s) | TTFT (s) | ITL (ms) | Power (W) | tok/s/W |")
		fmt.Println("|---|---|---|---|---|---|---|")
	}
	for _, p := range pts {
		prefix := ""
		if axes {
			prefix = fmt.Sprintf("| %s | %s | %s/%s ", p.Device, p.Framework,
				orFP16(p.Scheme.Weights), orFP16(p.Scheme.KV))
		}
		if p.Err != nil {
			fmt.Printf("%s| %d | %d | — (%v) | | | | |\n", prefix, p.Batch, p.Length, p.Err)
			continue
		}
		res := p.Result
		fmt.Printf("%s| %d | %d | %.0f | %.3f | %.3f | %.0f | %.2f |\n",
			prefix, p.Batch, p.Length, res.Throughput, res.TTFTSeconds, res.ITLSeconds*1000,
			res.TotalPowerWatts, res.TokensPerSecPerW)
	}
}

// serveFlags bundles the -serve mode's parsed-flag inputs.
type serveFlags struct {
	rates, replicas, maxbatches, policies string
	bursts, mixes, prefixShares           string
	devices, frameworks                   []string
	schemes                               []llmbench.Scheme
	requests, inMean, outMean             int
	seed                                  uint64
	kvBudget, hostKV, sigma               float64
	j                                     int
	chunked                               bool
	slo                                   float64
	tracePath, record                     string
	stream                                bool
}

// serveSweep runs the serving-capacity grid and prints its Markdown
// table.
func serveSweep(sys llmbench.System, f serveFlags) {
	if f.rates == "" && f.tracePath == "" {
		fatal(fmt.Errorf("-serve needs -rates (e.g. -rates 5,10,20) or -trace"))
	}
	var rs []float64
	var err error
	if f.rates != "" {
		// With -trace an absent -rates replays at the native rate.
		if rs, err = parseFloats("rates", f.rates); err != nil {
			fatal(err)
		}
	}
	reps, err := parseInts("replicas", f.replicas)
	if err != nil {
		fatal(err)
	}
	mbs, err := parseInts("maxbatches", f.maxbatches)
	if err != nil {
		fatal(err)
	}
	pols, err := parsePolicies(f.policies)
	if err != nil {
		fatal(err)
	}
	var bfs []float64
	if f.bursts != "" {
		if bfs, err = parseFloats("bursts", f.bursts); err != nil {
			fatal(err)
		}
		for _, b := range bfs {
			if b < 1 {
				fatal(fmt.Errorf("bad -bursts list %q: burst factor %g must be ≥ 1", f.bursts, b))
			}
		}
	}
	var lms []llmbench.LengthMix
	if f.mixes != "" {
		if lms, err = parseMixes(f.mixes); err != nil {
			fatal(err)
		}
	}
	var pfs []float64
	if f.prefixShares != "" {
		if pfs, err = parseShares(f.prefixShares); err != nil {
			fatal(err)
		}
	}
	var traceReqs []llmbench.TraceRequest
	if f.tracePath != "" {
		if f.bursts != "" || f.mixes != "" || f.prefixShares != "" {
			fatal(fmt.Errorf("-trace is incompatible with -bursts/-mixes/-prefix-shares: the recorded trace is the traffic shape"))
		}
		if f.record != "" {
			fatal(fmt.Errorf("-record conflicts with -trace: the grid would replay, not synthesize"))
		}
		traceReqs = readTrace(f.tracePath)
	}
	cfg := llmbench.ServeSweepConfig{
		System: sys, MaxBatch: mbs[0], KVBudgetGiB: f.kvBudget, HostKVGiB: f.hostKV,
		Seed: f.seed, Requests: f.requests, InputMean: f.inMean, OutputMean: f.outMean,
		ChunkedPrefill: f.chunked, Sigma: f.sigma,
		StreamStats: f.stream,
	}
	grid := llmbench.ServeGrid{
		Rates: rs, Replicas: reps, MaxBatches: mbs, Policies: pols,
		PrefixShares: pfs, BurstFactors: bfs, LengthMixes: lms, Trace: traceReqs,
		Devices: f.devices, Frameworks: f.frameworks, Schemes: f.schemes,
		Parallelism: f.j,
	}
	if f.record != "" {
		recordTrace(f.record, cfg, grid)
	}
	pts, err := llmbench.ServeSweep(cfg, grid)
	if err != nil {
		fatal(err)
	}
	axes := len(f.devices) > 0 || len(f.frameworks) > 0 || len(f.schemes) > 0
	shaped := len(bfs) > 0 || len(lms) > 0
	// A prefix-share axis adds its own pair of columns: the share each
	// point ran with and the cache hit rate the fleet achieved — the
	// numbers the axis exists to compare across routing policies.
	prefixed := len(pfs) > 0
	// Any disagg policy adds the transfer-delay column — the metric the
	// topology axis exists to expose — the same way the configuration
	// and shape axes add theirs.
	disagg := false
	for _, pol := range pols {
		if pol.Disagg() {
			disagg = true
		}
	}
	switch {
	case f.tracePath != "":
		fmt.Printf("### %s serving sweep (replaying %d recorded requests from %s)\n\n",
			sys.Model, len(traceReqs), f.tracePath)
	case shaped || prefixed:
		fmt.Printf("### %s serving sweep (%d reqs/point, bursty chat traffic)\n\n", sys.Model, f.requests)
	default:
		fmt.Printf("### %s serving sweep (%d reqs/point, in ~%d, out ~%d tokens)\n\n",
			sys.Model, f.requests, f.inMean, f.outMean)
	}
	prefixHdr := ""
	if axes {
		prefixHdr = "| Device | Framework | W/KV "
	}
	shapeHdr := ""
	if shaped {
		shapeHdr = " Burst | In:Out |"
	}
	shareHdr := ""
	if prefixed {
		shareHdr = " Prefix |"
	}
	hitHdr := ""
	if prefixed {
		hitHdr = " Hit (%) |"
	}
	xferHdr := ""
	if disagg {
		xferHdr = " Xfer (ms) |"
	}
	fmt.Printf("%s| Policy | Replicas | MaxBatch |%s%s Rate (req/s) | Throughput (tok/s) | p50 (s) | p95 (s) | p99 (s) | Queue p50/p95/p99 (s) |%s%s Preempt |\n",
		prefixHdr, shapeHdr, shareHdr, hitHdr, xferHdr)
	cols := 10
	if axes {
		cols += 3
	}
	if shaped {
		cols += 2
	}
	if prefixed {
		cols += 2
	}
	if disagg {
		cols++
	}
	fmt.Println("|" + strings.Repeat("---|", cols))
	for _, p := range pts {
		prefix := ""
		if axes {
			prefix = fmt.Sprintf("| %s | %s | %s/%s ", p.Device, p.Framework,
				orFP16(p.Scheme.Weights), orFP16(p.Scheme.KV))
		}
		shape := ""
		if shaped {
			shape = fmt.Sprintf(" ×%g | %d:%d |", p.BurstFactor, p.Mix.Input, p.Mix.Output)
		}
		share := ""
		if prefixed {
			share = fmt.Sprintf(" %g |", p.PrefixShare)
		}
		policy := p.Policy.String()
		if p.PeakReplicas > 0 {
			policy = fmt.Sprintf("%s (peak %d)", policy, p.PeakReplicas)
		}
		hit := ""
		if prefixed {
			hit = fmt.Sprintf(" %.1f |", p.Stats.CacheHitRate*100)
		}
		xfer := ""
		if disagg {
			xfer = fmt.Sprintf(" %.3f |", p.Stats.MeanTransferDelay*1000)
		}
		if p.Err != nil {
			blank := ""
			if prefixed {
				blank += " |"
			}
			if disagg {
				blank += " |"
			}
			fmt.Printf("%s| %s | %d | %d |%s%s %g | — (%v) | | | | |%s |\n",
				prefix, policy, p.Replicas, p.MaxBatch, shape, share, p.Rate, p.Err, blank)
			continue
		}
		s := p.Stats
		fmt.Printf("%s| %s | %d | %d |%s%s %g | %.0f | %.2f | %.2f | %.2f | %.2f/%.2f/%.2f |%s%s %d |\n",
			prefix, policy, p.Replicas, p.MaxBatch, shape, share, p.Rate, s.Throughput,
			s.P50Latency, s.P95Latency, s.P99Latency,
			s.P50QueueDelay, s.P95QueueDelay, s.P99QueueDelay, hit, xfer, s.Preemptions)
	}
	if f.slo > 0 {
		knees, err := llmbench.Knees(pts, f.slo)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nKnee per configuration (highest swept rate with p99 ≤ %gs):\n\n", f.slo)
		for _, k := range knees {
			name := fmt.Sprintf("%s, %d replica(s), mb %d", k.Policy, k.Replicas, k.MaxBatch)
			if axes {
				name = fmt.Sprintf("%s/%s %s", k.Device, k.Framework, name)
			}
			if shaped {
				name = fmt.Sprintf("%s, ×%g %d:%d", name, k.BurstFactor, k.Mix.Input, k.Mix.Output)
			}
			if prefixed {
				name = fmt.Sprintf("%s, prefix %g", name, k.PrefixShare)
			}
			if k.Met {
				fmt.Printf("- %s: %g req/s (p99 %.2fs, %.0f tok/s)\n", name, k.Rate, k.Stats.P99Latency, k.Stats.Throughput)
			} else {
				fmt.Printf("- %s: no swept rate meets the SLO\n", name)
			}
		}
	}
}

// readTrace replays a recorded trace file (see TRACES.md).
func readTrace(path string) []llmbench.TraceRequest {
	file, err := os.Open(path)
	if err != nil {
		fatal(fmt.Errorf("-trace: %w", err))
	}
	defer file.Close()
	reqs, _, err := llmbench.ReadTrace(file)
	if err != nil {
		fatal(fmt.Errorf("-trace %s: %w", path, err))
	}
	return reqs
}

// recordTrace captures the one-position grid's synthesized trace to a
// versioned trace file; the sweep then runs on exactly the recorded
// arrivals, so a later -trace replay reproduces it bit for bit.
func recordTrace(path string, cfg llmbench.ServeSweepConfig, grid llmbench.ServeGrid) {
	reqs, err := llmbench.ServePointTrace(cfg, grid)
	if err != nil {
		fatal(fmt.Errorf("-record: %w", err))
	}
	file, err := os.Create(path)
	if err != nil {
		fatal(fmt.Errorf("-record: %w", err))
	}
	meta := llmbench.TraceMeta{Source: fmt.Sprintf("llmbench-sweep seed=%d requests=%d", cfg.Seed, cfg.Requests)}
	if err := llmbench.WriteTrace(file, reqs, meta); err != nil {
		file.Close()
		fatal(fmt.Errorf("-record: %w", err))
	}
	if err := file.Close(); err != nil {
		fatal(fmt.Errorf("-record: %w", err))
	}
	fmt.Fprintf(os.Stderr, "llmbench-sweep: recorded %d requests to %s\n", len(reqs), path)
}

func orFP16(s string) string {
	if s == "" {
		return "fp16"
	}
	return s
}

// parseInts parses a comma-separated list of positive integers,
// rejecting empty elements and non-positive values at flag-parse time
// so they cannot resurface later as confusing per-point errors.
func parseInts(name, s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("bad -%s list %q: empty element", name, s)
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad -%s list %q: %w", name, s, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("bad -%s list %q: %d is not positive", name, s, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated list of positive, finite
// numbers (the -rates axis).
func parseFloats(name, s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("bad -%s list %q: empty element", name, s)
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -%s list %q: %w", name, s, err)
		}
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("bad -%s list %q: %v is not a positive finite number", name, s, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseList splits a comma-separated axis; empty input means the axis
// is unset, but empty elements between commas ("A100,,H100") are
// rejected instead of silently dropped.
func parseList(name, s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		v := strings.TrimSpace(p)
		if v == "" {
			return nil, fmt.Errorf("bad -%s list %q: empty element", name, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseSchemes parses "weights:kv" pairs ("fp16:fp16,int8:fp8"); a
// bare precision applies to both weights and KV.
func parseSchemes(s string) ([]llmbench.Scheme, error) {
	parts := strings.Split(s, ",")
	out := make([]llmbench.Scheme, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("bad scheme list %q: empty element", s)
		}
		w, kv, found := strings.Cut(p, ":")
		if !found {
			kv = w
		}
		if w == "" || kv == "" {
			return nil, fmt.Errorf("bad scheme %q: want weights:kv", p)
		}
		out = append(out, llmbench.Scheme{Weights: w, KV: kv})
	}
	return out, nil
}

// parsePolicies parses the -policies axis: comma-separated entries in
// llmbench.ParseServePolicy's textual form — ':'- or '/'-joined tokens
// such as "continuous:ll,static,static:autoscale,disagg/1:3". Malformed
// entries — unknown tokens, bad pool splits, combinations the
// simulators reject (static or autoscale with disagg) — fail here at
// flag-parse time, naming the flag.
func parsePolicies(s string) ([]llmbench.ServePolicy, error) {
	entries := strings.Split(s, ",")
	out := make([]llmbench.ServePolicy, 0, len(entries))
	for _, entry := range entries {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("bad -policies list %q: empty element", s)
		}
		pol, err := llmbench.ParseServePolicy(entry)
		if err != nil {
			return nil, fmt.Errorf("bad -policies list %q: %w", s, err)
		}
		out = append(out, pol)
	}
	return out, nil
}

// parseShares parses the -prefix-shares axis: comma-separated shares
// in [0, 1) of each point's input median spent on the fleet-wide
// shared prefix. Unlike -rates, zero is a valid element — it pins a
// no-prefix baseline point inside an otherwise-prefixed grid.
func parseShares(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("bad -prefix-shares list %q: empty element", s)
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -prefix-shares list %q: %w", s, err)
		}
		if !(v >= 0) || v >= 1 {
			return nil, fmt.Errorf("bad -prefix-shares list %q: share %v is outside [0, 1)", s, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseMixes parses the -mixes axis: comma-separated "input:output"
// length-median pairs ("512:128,2048:256"). Medians must be positive;
// the trace generator's deeper floor (≥ 16) surfaces per point.
func parseMixes(s string) ([]llmbench.LengthMix, error) {
	parts := strings.Split(s, ",")
	out := make([]llmbench.LengthMix, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("bad -mixes list %q: empty element", s)
		}
		in, outS, found := strings.Cut(p, ":")
		if !found {
			return nil, fmt.Errorf("bad -mixes entry %q: want input:output", p)
		}
		i, err1 := strconv.Atoi(strings.TrimSpace(in))
		o, err2 := strconv.Atoi(strings.TrimSpace(outS))
		if err1 != nil || err2 != nil || i < 1 || o < 1 {
			return nil, fmt.Errorf("bad -mixes entry %q: want positive input:output medians", p)
		}
		out = append(out, llmbench.LengthMix{Input: i, Output: o})
	}
	return out, nil
}

// validateSLO rejects negative, NaN, and infinite -slo values at flag
// parse time; 0 means no SLO was requested.
func validateSLO(v float64) error {
	if v != 0 && (!(v > 0) || math.IsInf(v, 0)) {
		return fmt.Errorf("bad -slo value %v: want a positive, finite number of seconds", v)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmbench-sweep:", err)
	os.Exit(1)
}

// startProfiles starts CPU profiling and arranges the end-of-run heap
// snapshot per the -cpuprofile/-memprofile flags; the returned stop
// function must run before a successful exit (fatal exits skip it —
// a failed sweep has no profile worth keeping). Empty paths are
// no-ops.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "llmbench-sweep: -cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "llmbench-sweep: -memprofile:", err)
				return
			}
			runtime.GC() // snapshot live heap, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "llmbench-sweep: -memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "llmbench-sweep: -memprofile:", err)
			}
		}
	}, nil
}

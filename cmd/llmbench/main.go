// Command llmbench regenerates the paper's figures and tables from the
// simulation engine.
//
// Usage:
//
//	llmbench list                 # list every experiment
//	llmbench run fig6 [fig7 ...]  # run experiments, print Markdown
//	llmbench all                  # run everything in paper order
//	llmbench all -csv results/    # additionally write per-figure CSVs
//	llmbench catalog              # list models, devices, frameworks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"llmbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "llmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		for _, e := range llmbench.Experiments() {
			fmt.Printf("%-7s %s\n        workload: %s\n", e.ID, e.Title, e.Workload)
		}
		return nil
	case "catalog":
		fmt.Println("Models:")
		for _, m := range llmbench.Models() {
			fmt.Println("  ", m)
		}
		fmt.Println("Devices:")
		for _, d := range llmbench.Devices() {
			fmt.Println("  ", d)
		}
		fmt.Println("Frameworks:")
		for _, f := range llmbench.Frameworks() {
			fmt.Println("  ", f)
		}
		return nil
	case "run":
		if len(args) < 2 {
			return fmt.Errorf("run needs at least one experiment id")
		}
		for _, id := range args[1:] {
			if err := runOne(id, ""); err != nil {
				return err
			}
		}
		return nil
	case "all":
		fs := flag.NewFlagSet("all", flag.ContinueOnError)
		csvDir := fs.String("csv", "", "directory to write per-figure CSV files")
		j := fs.Int("j", 0, "experiment parallelism (0 = all cores)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
		}
		var ids []string
		for _, e := range llmbench.Experiments() {
			ids = append(ids, e.ID)
		}
		return runMany(ids, *csvDir, *j)
	case "report":
		fs := flag.NewFlagSet("report", flag.ContinueOnError)
		j := fs.Int("j", 0, "figure parallelism (0 = all cores)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		md, err := llmbench.ReportParallel(*j)
		if err != nil {
			return err
		}
		fmt.Println(md)
		return nil
	case "explain":
		fs := flag.NewFlagSet("explain", flag.ContinueOnError)
		modelName := fs.String("model", "LLaMA-3-8B", "model name")
		device := fs.String("device", "A100", "accelerator name")
		fw := fs.String("framework", "vLLM", "framework name")
		tp := fs.Int("tp", 1, "tensor-parallel degree")
		batch := fs.Int("batch", 16, "batch size")
		length := fs.Int("len", 1024, "input/output length")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		bd, err := llmbench.Explain(
			llmbench.System{Model: *modelName, Device: *device, Framework: *fw, TP: *tp},
			llmbench.Workload{Batch: *batch, Input: *length, Output: *length})
		if err != nil {
			return err
		}
		printBreakdown(bd)
		return nil
	case "verify":
		fs := flag.NewFlagSet("verify", flag.ContinueOnError)
		j := fs.Int("j", 0, "figure parallelism (0 = all cores)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		rows, err := llmbench.VerifyAnchorsParallel(*j)
		if err != nil {
			return err
		}
		failed := 0
		for _, r := range rows {
			status := "ok  "
			if !r.Holds {
				status = "FAIL"
				failed++
			}
			fmt.Printf("%s %-6s %s: measured %s (paper %s)\n", status, r.Figure, r.Claim, r.Measured, r.Paper)
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d anchors outside their shape bands", failed, len(rows))
		}
		fmt.Printf("\nall %d anchors hold\n", len(rows))
		return nil
	case "perplexity":
		fmt.Println("Perplexity on the synthetic LongBench-like corpus (Figs. 10/29):")
		for _, m := range []string{
			"LLaMA-2-7B", "Mistral-7B", "LLaMA-3-8B", "Gemma-7B", "DeciLM-7B",
			"LLaMA-7B", "Qwen1.5-7B", "Aquila-7B", "GPT-J-6B", "OPT-6.7B", "Bloom-7.1B",
		} {
			ppl, err := llmbench.Perplexity(m)
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s %.3f\n", m, ppl)
		}
		return nil
	case "-h", "--help", "help":
		usage()
		return nil
	}
	return fmt.Errorf("unknown command %q (try 'llmbench help')", args[0])
}

func runOne(id, csvDir string) error {
	return runMany([]string{id}, csvDir, 1)
}

// runMany regenerates experiments concurrently but prints them in
// paper order, so `llmbench all -j 8` output matches `llmbench all`.
// On failure the experiments before the failing one still print —
// the serial loop's partial-output behaviour (RunExperiments
// guarantees every id below the failing one is complete).
func runMany(ids []string, csvDir string, parallelism int) error {
	results, err := llmbench.RunExperiments(ids, parallelism)
	for _, res := range results {
		if res.ID == "" {
			break // the failing experiment; err names it
		}
		fmt.Println(res.Markdown)
		if csvDir != "" && res.CSV != "" {
			path := filepath.Join(csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV), 0o644); err != nil {
				return err
			}
			fmt.Printf("(wrote %s)\n\n", path)
		}
	}
	return err
}

func printBreakdown(bd *llmbench.Breakdown) {
	fmt.Printf("Workload: batch %d, input %d, output %d\n",
		bd.Spec.Batch, bd.Spec.Input, bd.Spec.Output)
	if bd.Waves > 1 {
		fmt.Printf("Memory plan: %d waves of %d sequences (KV does not fit at once); peak %.1f GiB/device\n",
			bd.Waves, bd.ConcurrentBatch, bd.PeakMemGiB)
	} else {
		fmt.Printf("Memory plan: whole batch resident; peak %.1f GiB/device\n", bd.PeakMemGiB)
	}
	bound := func(memoryBound bool) string {
		if memoryBound {
			return "memory-bound"
		}
		return "compute-bound"
	}
	p := bd.Prefill
	fmt.Printf("\nPrefill (%s): %.3fs total\n", bound(p.MemoryBound), p.Seconds)
	fmt.Printf("  compute wall %.3fs | memory wall %.3fs (weights %.3fs, KV write %.3fs)\n",
		p.ComputeWall, p.MemoryWall, p.WeightStreamS, p.KVWriteS)
	fmt.Printf("  comm %.3fs | overhead %.3fs | setup %.3fs\n", p.CommS, p.OverheadS, p.SetupS)
	d := bd.Decode
	fmt.Printf("\nDecode, all steps (%s): %.3fs total\n", bound(d.MemoryBound), d.Seconds)
	fmt.Printf("  compute wall %.3fs | memory wall %.3fs (weights %.3fs, KV read %.3fs, KV write %.3fs)\n",
		d.ComputeWall, d.MemoryWall, d.WeightStreamS, d.KVReadS, d.KVWriteS)
	fmt.Printf("  comm %.3fs | overhead %.3fs | logits penalty %.3fs\n", d.CommS, d.OverheadS, d.LogitsS)
}

func usage() {
	fmt.Println(`llmbench — LLM-Inference-Bench (SC'24) reproduction

Commands:
  list            list every reproduced figure/table
  run <id>...     regenerate specific experiments (e.g. fig6, tab2)
  all [-csv DIR] [-j N]
                  regenerate everything in paper order; -j bounds the
                  worker count (0 = all cores, output order unchanged)
  report [-j N]   print the paper-vs-measured anchor table (EXPERIMENTS.md)
  verify [-j N]   CI check: fail if any paper anchor leaves its shape band
  explain [-model M -device D -framework F -tp N -batch B -len L]
                  attribute one benchmark point's time to mechanisms
  perplexity      evaluate the Fig. 10 quality axis
  catalog         list models, devices, frameworks`)
}

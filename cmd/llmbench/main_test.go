package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunCommands(t *testing.T) {
	for _, args := range [][]string{
		{"list"},
		{"catalog"},
		{"run", "tab1"},
		{"run", "fig2b"},
		{"perplexity"},
		{"verify"},
		{"help"},
		nil,
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command must fail")
	}
	if err := run([]string{"run"}); err == nil {
		t.Error("run without ids must fail")
	}
	if err := run([]string{"run", "fig99"}); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunOneWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := runOne("fig2b", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2b.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV written")
	}
}

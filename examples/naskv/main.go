// naskv reproduces the DeciLM-7B design process of §IV-B4: search
// per-layer KV-head counts (pool {1,2,4}) that maximize simulated
// decode throughput under a quality budget, then show what the found
// architecture gains over its LLaMA-3-8B-style starting point.
//
//	go run ./examples/naskv
package main

import (
	"fmt"
	"log"

	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/model"
	"llmbench/internal/nas"
)

func main() {
	base := model.MustGet("LLaMA-3-8B")
	fmt.Printf("KV-head NAS on a %s-shaped decoder (%d layers × %d heads, %d KV heads/layer stock)\n\n",
		base.Name, base.Layers, base.Heads, base.KVHeads)

	// The {1,2,4} pool caps mean quality at ~0.46 (log(5)/log(33) per
	// layer), so budgets stay below that.
	for _, budget := range []float64{0.30, 0.38, 0.44} {
		res, err := nas.Search(nas.Config{
			Base:          base,
			Options:       []int{1, 2, 4}, // DeciLM's pool
			QualityBudget: budget,
			Device:        hw.MustGet("A100"),
			Framework:     framework.MustGet("TRT-LLM"),
			Batch:         64,
			Context:       1024,
			Iterations:    8000,
			Seed:          2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("quality budget %.2f → %d total KV heads (DeciLM shipped 67), decode step %.2f ms, %.2fx vs all-4\n",
			budget, res.Allocation.Total(), res.StepTime*1000, res.Speedup)
		fmt.Printf("  per-layer: %v\n\n", res.Allocation)
	}

	fmt.Println("Lower budgets buy throughput with fewer KV heads — exactly the")
	fmt.Println("trade DeciLM-7B's NAS made to top the Fig. 4a/10 throughput charts.")
}

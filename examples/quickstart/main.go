// Quickstart: run one benchmark point — LLaMA-3-8B on an A100 under
// vLLM — and print the paper's metrics (throughput per Eq. 2, TTFT,
// ITL per Eq. 1, power).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"llmbench"
)

func main() {
	sys := llmbench.System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"}

	fmt.Println("LLaMA-3-8B on one A100 via vLLM (fp16), input/output 1024")
	fmt.Println()
	fmt.Println("Batch | Throughput (tok/s) | TTFT (s) | ITL (ms) | Power (W)")
	fmt.Println("------+--------------------+----------+----------+----------")
	for _, batch := range []int{1, 16, 32, 64} {
		res, err := llmbench.Run(sys, llmbench.Workload{Batch: batch, Input: 1024, Output: 1024})
		if err != nil {
			log.Fatalf("batch %d: %v", batch, err)
		}
		fmt.Printf("%5d | %18.0f | %8.3f | %8.3f | %8.0f\n",
			batch, res.Throughput, res.TTFTSeconds, res.ITLSeconds*1000, res.AvgPowerWatts)
	}

	fmt.Println()
	fmt.Println("The same model everywhere it runs (batch 16):")
	for _, dev := range llmbench.Devices() {
		for _, fw := range llmbench.Frameworks() {
			sys := llmbench.System{Model: "LLaMA-3-8B", Device: dev, Framework: fw}
			if dev == "SN40L" {
				sys.TP = 8 // the paper's SN40L setup is fixed at 8 RDUs
			}
			res, err := llmbench.Run(sys, llmbench.Workload{Batch: 16, Input: 1024, Output: 1024})
			if err != nil {
				continue // framework does not support this device, or OOM
			}
			fmt.Printf("  %-7s %-10s %8.0f tok/s\n", dev, fw, res.Throughput)
		}
	}
}

// capacity is a deployment-planning workflow built on the serving
// sweep: one ServeSweep call evaluates the whole accelerator ×
// replica-count × arrival-rate grid for a chat-style workload, and
// Knees folds it into each fleet's capacity knee — the highest swept
// rate whose P99 latency meets the SLO — the decision the paper's
// benchmarking data exists to inform (§VII: "the choice of framework
// should be tailored to specific user scenarios and infrastructure
// constraints").
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"llmbench"
)

func main() {
	const (
		targetRate = 30.0 // requests/s to sustain
		sloP99     = 6.0  // seconds, end-to-end p99
	)
	fmt.Printf("Capacity planning: Mistral-7B chat, target %g req/s, p99 ≤ %gs\n", targetRate, sloP99)
	fmt.Println("(prompts ~512 tokens, replies ~128 tokens, least-loaded router)")
	fmt.Println()

	// One call sweeps every fleet: device × replica count × arrival
	// rate. TRT-LLM does not build on MI300X — that combination's
	// points carry the error instead of aborting the grid, exactly
	// like the gaps in the paper's tables.
	pts, err := llmbench.ServeSweep(llmbench.ServeSweepConfig{
		System:   llmbench.System{Model: "Mistral-7B", Framework: "TRT-LLM"},
		MaxBatch: 32,
		Seed:     99, Requests: 300, InputMean: 512, OutputMean: 128,
	}, llmbench.ServeGrid{
		Rates:      []float64{10, 20, 30, 40},
		Replicas:   []int{1, 2, 4, 8, 16},
		Policies:   []llmbench.ServePolicy{{LeastLoaded: true}},
		Devices:    []string{"A100", "H100", "GH200", "MI300X"},
		Frameworks: []string{"TRT-LLM", "vLLM"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Distinguish fleets that don't build (TRT-LLM on MI300X) from
	// fleets whose swept rates all miss the SLO: a fleet with no
	// working point at all reports its build error instead of a
	// capacity shortfall.
	type fleet struct{ dev, fw string }
	works := make(map[fleet]bool)
	buildErr := make(map[fleet]error)
	for _, p := range pts {
		f := fleet{p.Device, p.Framework}
		if p.Err == nil {
			works[f] = true
		} else if _, ok := buildErr[f]; !ok {
			buildErr[f] = p.Err
		}
	}

	knees := llmbench.Knees(pts, sloP99)
	fmt.Println("Capacity knee per fleet (highest swept rate with p99 ≤ SLO):")
	fmt.Println()
	fmt.Println("| Device | Framework | Replicas | Knee (req/s) | p99 @ knee (s) | tok/s @ knee |")
	fmt.Println("|---|---|---|---|---|---|")
	smallest := make(map[fleet]int) // fewest replicas sustaining targetRate
	seen := make(map[fleet]bool)
	var fleets []fleet
	for _, k := range knees {
		f := fleet{k.Device, k.Framework}
		if !seen[f] {
			seen[f] = true
			fleets = append(fleets, f)
		}
		if !k.Met {
			continue
		}
		fmt.Printf("| %s | %s | %d | %g | %.2f | %.0f |\n",
			k.Device, k.Framework, k.Replicas, k.Rate, k.Stats.P99Latency, k.Stats.Throughput)
		if k.Rate >= targetRate {
			if cur, ok := smallest[f]; !ok || k.Replicas < cur {
				smallest[f] = k.Replicas
			}
		}
	}
	fmt.Println()
	fmt.Printf("Smallest fleet sustaining %g req/s under the SLO:\n", targetRate)
	for _, f := range fleets {
		switch n, ok := smallest[f]; {
		case ok:
			fmt.Printf("  %-7s (%s): %2d replica(s)\n", f.dev, f.fw, n)
		case !works[f]:
			fmt.Printf("  %-7s (%s): unavailable — %v\n", f.dev, f.fw, buildErr[f])
		default:
			fmt.Printf("  %-7s (%s): not within the swept grid\n", f.dev, f.fw)
		}
	}
	fmt.Println()
	fmt.Println("Rerun with a different model, policy axis, or SLO — the whole")
	fmt.Println("grid is one ServeSweep call; see also `llmbench-sweep -serve`.")
}

// capacity is a deployment-planning workflow built on the cluster
// simulator: given a target arrival rate and latency SLO for a
// chat-style workload, find the smallest replica count of each
// accelerator that meets it — the decision the paper's benchmarking
// data exists to inform (§VII: "the choice of framework should be
// tailored to specific user scenarios and infrastructure
// constraints").
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"llmbench"
)

func main() {
	const (
		targetRate = 30.0 // requests/s to sustain
		sloP99     = 6.0  // seconds, end-to-end p99
	)
	fmt.Printf("Capacity planning: Mistral-7B chat, %g req/s, p99 ≤ %gs\n", targetRate, sloP99)
	fmt.Println("(prompts ~512 tokens, replies ~128 tokens, least-loaded router)")
	fmt.Println()

	type option struct {
		dev, fw string
	}
	options := []option{
		{"A100", "TRT-LLM"},
		{"H100", "TRT-LLM"},
		{"GH200", "TRT-LLM"},
		{"MI300X", "vLLM"},
	}
	for _, opt := range options {
		met := false
		for replicas := 1; replicas <= 16; replicas *= 2 {
			stats, err := llmbench.ServeCluster(llmbench.ClusterConfig{
				System:      llmbench.System{Model: "Mistral-7B", Device: opt.dev, Framework: opt.fw},
				Replicas:    replicas,
				LeastLoaded: true,
				MaxBatch:    32,
				Parallelism: 4, // per-replica goroutines; Stats identical at any setting
				Seed:        99,
				Requests:    300,
				RatePerSec:  targetRate,
				InputMean:   512,
				OutputMean:  128,
			})
			if err != nil {
				log.Fatalf("%s: %v", opt.dev, err)
			}
			if stats.P99Latency <= sloP99 {
				util := 0.0
				for _, r := range stats.PerReplica {
					util += r.Util
				}
				util /= float64(len(stats.PerReplica))
				fmt.Printf("%-7s (%s): %2d replica(s) meet the SLO — p50/p95/p99 %.2f/%.2f/%.2fs, p99 queue %.2fs, cluster %.0f tok/s, avg util %.0f%%\n",
					opt.dev, opt.fw, replicas, stats.P50Latency, stats.P95Latency, stats.P99Latency,
					stats.P99QueueDelay, stats.Throughput, util*100)
				met = true
				break
			}
		}
		if !met {
			fmt.Printf("%-7s (%s): does not meet the SLO within 16 replicas\n", opt.dev, opt.fw)
		}
	}
	fmt.Println()
	fmt.Println("Rerun with a different model, framework, or SLO to explore the")
	fmt.Println("trade-offs the LLM-Inference-Bench dashboard is built to expose.")
}

// capacity is a deployment-planning workflow built on the serving
// sweep: one ServeSweep call evaluates the whole accelerator ×
// replica-count × arrival-rate × traffic-shape grid for a chat-style
// workload, and Knees folds it into each fleet's capacity knee — the
// highest swept rate whose P99 latency meets the SLO — the decision
// the paper's benchmarking data exists to inform (§VII: "the choice
// of framework should be tailored to specific user scenarios and
// infrastructure constraints"). The burst-factor axis contrasts
// smooth and bursty arrivals (workload.ChatTrace), showing how much
// capacity headroom bursty traffic costs; LeanStats keeps the big
// grid's memory at aggregate size.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"llmbench"
)

func main() {
	const (
		targetRate = 30.0 // requests/s to sustain
		sloP99     = 6.0  // seconds, end-to-end p99
	)
	fmt.Printf("Capacity planning: Mistral-7B chat, target %g req/s, p99 ≤ %gs\n", targetRate, sloP99)
	fmt.Println("(prompts ~512 tokens, replies ~128 tokens, least-loaded router,")
	fmt.Println(" smooth vs bursty arrivals)")
	fmt.Println()

	// One call sweeps every fleet: device × replica count × arrival
	// rate × burst factor (1 = smooth chat traffic, 4 = bursty).
	// TRT-LLM does not build on MI300X — that combination's points
	// carry the error instead of aborting the grid, exactly like the
	// gaps in the paper's tables. LeanStats drops the per-request
	// ledgers the knee fold never reads.
	pts, err := llmbench.ServeSweep(llmbench.ServeSweepConfig{
		System:   llmbench.System{Model: "Mistral-7B", Framework: "TRT-LLM"},
		MaxBatch: 32,
		Seed:     99, Requests: 300, InputMean: 512, OutputMean: 128,
		LeanStats: true,
	}, llmbench.ServeGrid{
		Rates:        []float64{10, 20, 30, 40},
		Replicas:     []int{1, 2, 4, 8, 16},
		Policies:     []llmbench.ServePolicy{{LeastLoaded: true}},
		BurstFactors: []float64{1, 4},
		Devices:      []string{"A100", "H100", "GH200", "MI300X"},
		Frameworks:   []string{"TRT-LLM", "vLLM"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Distinguish fleets that don't build (TRT-LLM on MI300X) from
	// fleets whose swept rates all miss the SLO: a fleet with no
	// working point at all reports its build error instead of a
	// capacity shortfall.
	type fleet struct{ dev, fw string }
	works := make(map[fleet]bool)
	buildErr := make(map[fleet]error)
	for _, p := range pts {
		f := fleet{p.Device, p.Framework}
		if p.Err == nil {
			works[f] = true
		} else if _, ok := buildErr[f]; !ok {
			buildErr[f] = p.Err
		}
	}

	knees, err := llmbench.Knees(pts, sloP99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Capacity knee per fleet and traffic shape (highest swept rate with p99 ≤ SLO):")
	fmt.Println()
	fmt.Println("| Device | Framework | Replicas | Burst | Knee (req/s) | p99 @ knee (s) | tok/s @ knee |")
	fmt.Println("|---|---|---|---|---|---|---|")
	// Fewest replicas sustaining targetRate, per burst factor.
	smallest := make(map[fleet]map[float64]int)
	seen := make(map[fleet]bool)
	var fleets []fleet
	for _, k := range knees {
		f := fleet{k.Device, k.Framework}
		if !seen[f] {
			seen[f] = true
			fleets = append(fleets, f)
		}
		if !k.Met {
			continue
		}
		fmt.Printf("| %s | %s | %d | ×%g | %g | %.2f | %.0f |\n",
			k.Device, k.Framework, k.Replicas, k.BurstFactor, k.Rate, k.Stats.P99Latency, k.Stats.Throughput)
		if k.Rate >= targetRate {
			if smallest[f] == nil {
				smallest[f] = make(map[float64]int)
			}
			if cur, ok := smallest[f][k.BurstFactor]; !ok || k.Replicas < cur {
				smallest[f][k.BurstFactor] = k.Replicas
			}
		}
	}
	fmt.Println()
	fmt.Printf("Smallest fleet sustaining %g req/s under the SLO (smooth / ×4 bursty):\n", targetRate)
	perShape := func(m map[float64]int, burst float64) string {
		if n, ok := m[burst]; ok {
			return fmt.Sprintf("%d replica(s)", n)
		}
		return "not within the swept grid"
	}
	for _, f := range fleets {
		switch m := smallest[f]; {
		case m != nil:
			fmt.Printf("  %-7s (%s): %s / %s\n", f.dev, f.fw, perShape(m, 1), perShape(m, 4))
		case !works[f]:
			fmt.Printf("  %-7s (%s): unavailable — %v\n", f.dev, f.fw, buildErr[f])
		default:
			fmt.Printf("  %-7s (%s): not within the swept grid\n", f.dev, f.fw)
		}
	}
	fmt.Println()
	fmt.Println("The shape axis moves the knee in both directions: the burst factor")
	fmt.Println("is rate-preserving, so ×4 traffic interleaves overload bursts with")
	fmt.Println("calm drain periods — a marginal fleet loses its knee to the bursts")
	fmt.Println("(A100 above) while an adequate one rides out the same mean rate")
	fmt.Println("more easily than under sustained smooth load. Rerun with a")
	fmt.Println("different model, policy axis (static, autoscale), length-mix axis,")
	fmt.Println("or SLO — the whole grid is one ServeSweep call; see also")
	fmt.Println("`llmbench-sweep -serve`.")
}

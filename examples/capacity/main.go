// capacity is a deployment-planning workflow built on the serving
// sweep: one ServeSweep call evaluates a serving-topology × fleet-size
// × arrival-rate × traffic-shape grid for a chat-style workload, and
// Knees folds it into each configuration's capacity knee — the highest
// swept rate whose P99 latency meets the SLO. The topology axis asks
// the production question the disaggregation literature poses: when
// does splitting a fleet into prefill and decode pools (KV hand-offs
// priced over the device interconnect) beat the same replicas serving
// both phases? The length-mix axis contrasts prompt-heavy and
// decode-heavy traffic, where the answer differs; LeanStats keeps the
// grid's memory at aggregate size.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"llmbench"
)

func main() {
	const targetRate = 20.0 // requests/s to sustain
	// Each mix gets the SLO its traffic can physically meet: long
	// replies spend tens of seconds generating, so a decode-heavy p99
	// target is an order looser than a prompt-heavy one.
	mixes := []struct {
		mix llmbench.LengthMix
		slo float64
	}{
		{llmbench.LengthMix{Input: 512, Output: 128}, 8},  // prompt-heavy: large transfers, short decode
		{llmbench.LengthMix{Input: 128, Output: 512}, 30}, // decode-heavy: small transfers, decode dominates
	}
	fmt.Printf("Fleet planning: Mistral-7B chat on A100/vLLM, target %g req/s\n", targetRate)
	fmt.Println("(aggregated vs disaggregated prefill/decode pools, least-loaded router,")
	fmt.Println(" prompt-heavy 512:128 @ p99 ≤ 8s vs decode-heavy 128:512 @ p99 ≤ 30s)")
	fmt.Println()

	// One call sweeps every configuration: topology × fleet size ×
	// arrival rate × length mix. The disagg entries are pool ratios —
	// disagg/1:3 turns a fleet of 8 into 2 prefill + 6 decode replicas
	// — so both fleet sizes divide evenly by every swept split.
	policies := []llmbench.ServePolicy{
		{LeastLoaded: true},
		{LeastLoaded: true, PrefillPool: 1, DecodePool: 3},
		{LeastLoaded: true, PrefillPool: 2, DecodePool: 2},
	}
	pts, err := llmbench.ServeSweep(llmbench.ServeSweepConfig{
		System:   llmbench.System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		MaxBatch: 32,
		Seed:     99, Requests: 300,
		InputMean: 512, OutputMean: 128,
		LeanStats: true,
	}, llmbench.ServeGrid{
		Rates:       []float64{5, 10, 20, 30},
		Replicas:    []int{4, 8},
		Policies:    policies,
		LengthMixes: []llmbench.LengthMix{mixes[0].mix, mixes[1].mix},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Capacity knee per topology, fleet, and mix (highest swept rate with p99 ≤ SLO):")
	fmt.Println()
	fmt.Println("| Topology | Replicas | In:Out | SLO (s) | Knee (req/s) | p99 @ knee (s) | tok/s @ knee | mean xfer (ms) |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	type plan struct {
		policy llmbench.ServePolicy
		mix    llmbench.LengthMix
	}
	smallest := make(map[plan]int)
	for _, ms := range mixes {
		// Per-mix SLOs mean one Knees fold per mix, over that mix's
		// slice of the grid.
		var subset []llmbench.ServeSweepPoint
		for _, p := range pts {
			if p.Mix == ms.mix {
				subset = append(subset, p)
			}
		}
		knees, err := llmbench.Knees(subset, ms.slo)
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range knees {
			if !k.Met {
				fmt.Printf("| %s | %d | %d:%d | %g | — no swept rate meets the SLO | | | |\n",
					k.Policy, k.Replicas, k.Mix.Input, k.Mix.Output, ms.slo)
				continue
			}
			fmt.Printf("| %s | %d | %d:%d | %g | %g | %.2f | %.0f | %.3f |\n",
				k.Policy, k.Replicas, k.Mix.Input, k.Mix.Output, ms.slo, k.Rate,
				k.Stats.P99Latency, k.Stats.Throughput, k.Stats.MeanTransferDelay*1000)
			if k.Rate >= targetRate {
				p := plan{k.Policy, k.Mix}
				if cur, ok := smallest[p]; !ok || k.Replicas < cur {
					smallest[p] = k.Replicas
				}
			}
		}
	}
	fmt.Println()
	fmt.Printf("Smallest fleet sustaining %g req/s under its mix's SLO, per topology:\n", targetRate)
	for _, ms := range mixes {
		fmt.Printf("  %d:%d traffic (p99 ≤ %gs):\n", ms.mix.Input, ms.mix.Output, ms.slo)
		for _, pol := range policies {
			if n, ok := smallest[plan{pol, ms.mix}]; ok {
				fmt.Printf("    %-28s %d replica(s)\n", pol, n)
			} else {
				fmt.Printf("    %-28s not within the swept grid\n", pol)
			}
		}
	}
	fmt.Println()
	fmt.Println("The comparison is the point: disaggregation spends replicas on a")
	fmt.Println("dedicated prefill pool and an interconnect hand-off per request, and")
	fmt.Println("buys decode iterations that long prompts never stall — prompt-heavy")
	fmt.Println("traffic reaches the target with half the fleet. Decode-heavy traffic")
	fmt.Println("leaves the prefill pool idle, so the aggregated fleet's flexible")
	fmt.Println("replicas win back the advantage. Rerun with other splits, models, or")
	fmt.Println("SLOs — the whole grid is one ServeSweep call; see also")
	fmt.Println("`llmbench-sweep -serve -policies ll,ll:disagg/1:3`.")
}

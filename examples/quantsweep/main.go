// quantsweep reproduces the quantization decision of §IV-B3 / Fig. 3
// interactively: one llmbench.Sweep call (the Devices and Schemes
// grid axes) covers every weight/KV precision combination on H100 and
// A100, showing both the throughput gain and the (small) perplexity
// cost — and that A100's missing FP8 hardware limits its options to
// INT8, which surfaces as per-point errors rather than a separate
// code path.
//
//	go run ./examples/quantsweep
package main

import (
	"fmt"

	"llmbench"
)

func main() {
	const modelName = "LLaMA-3-8B"
	fmt.Printf("Quantization sweep: %s, batch 16, input/output 1024\n\n", modelName)

	basePPL, err := llmbench.Perplexity(modelName)
	if err != nil {
		fmt.Println("perplexity unavailable:", err)
		return
	}

	// The whole figure is one sweep: devices × schemes, the engine
	// cache carrying every combination.
	devices := []string{"H100", "A100"}
	schemes := []llmbench.Scheme{
		{Weights: "fp16", KV: "fp16"},
		{Weights: "fp16", KV: "fp8"},
		{Weights: "fp8", KV: "fp8"},
		{Weights: "int8", KV: "int8"},
		{Weights: "int8", KV: "fp8"},
	}
	pts, err := llmbench.Sweep(llmbench.System{Model: modelName, Framework: "TRT-LLM"}, llmbench.Grid{
		Devices: devices,
		Schemes: schemes,
		Batches: []int{16},
		Lengths: []int{1024},
	})
	if err != nil {
		fmt.Println("sweep failed:", err)
		return
	}

	// Points arrive in axis order (devices outermost), so a single
	// pass prints the per-device sections.
	lastDev := ""
	var baseline float64
	for _, p := range pts {
		if p.Device != lastDev {
			if lastDev != "" {
				fmt.Println()
			}
			fmt.Printf("-- %s (TRT-LLM) --\n", p.Device)
			lastDev = p.Device
			baseline = 0
		}
		s := p.Scheme
		if p.Err != nil {
			fmt.Printf("  {%-4s, %-4s}  unsupported: %v\n", s.Weights, s.KV, p.Err)
			continue
		}
		if s.Weights == "fp16" && s.KV == "fp16" {
			baseline = p.Result.Throughput
		}
		fmt.Printf("  {%-4s, %-4s}  %7.0f tok/s  (%.2fx fp16)  ppl ~%.2f\n",
			s.Weights, s.KV, p.Result.Throughput, p.Result.Throughput/baseline,
			basePPL+pplDelta(s.Weights, s.KV))
	}
	fmt.Println()
	fmt.Println("FP8 weights error out on A100 — the hardware has no FP8 GEMM")
	fmt.Println("(§IV-B3), so INT8 is its only low-precision weight option.")
}

// pplDelta mirrors quant.Scheme.PerplexityDelta for display.
func pplDelta(w, kv string) float64 {
	d := 0.0
	switch w {
	case "fp8":
		d += 0.015
	case "int8":
		d += 0.03
	}
	switch kv {
	case "fp8":
		d += 0.01
	case "int8":
		d += 0.02
	}
	return d
}

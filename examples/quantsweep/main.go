// quantsweep reproduces the quantization decision of §IV-B3 / Fig. 3
// interactively: for a given model it sweeps the weight/KV precision
// combinations on H100 and A100, showing both the throughput gain and
// the (small) perplexity cost — and that A100's missing FP8 hardware
// limits its options to INT8.
//
//	go run ./examples/quantsweep
package main

import (
	"fmt"

	"llmbench"
)

func main() {
	const modelName = "LLaMA-3-8B"
	fmt.Printf("Quantization sweep: %s, batch 16, input/output 1024\n\n", modelName)

	basePPL, err := llmbench.Perplexity("LLaMA-3-8B")
	if err != nil {
		fmt.Println("perplexity unavailable:", err)
		return
	}

	type scheme struct{ w, kv string }
	schemes := []scheme{
		{"fp16", "fp16"},
		{"fp16", "fp8"},
		{"fp8", "fp8"},
		{"int8", "int8"},
		{"int8", "fp8"},
	}
	// Each scheme is its own System, so the shared engine cache (not a
	// per-point rebuild) carries the whole sweep.
	grid := llmbench.Grid{Batches: []int{16}, Lengths: []int{1024}}
	for _, dev := range []string{"H100", "A100"} {
		fmt.Printf("-- %s (TRT-LLM) --\n", dev)
		var baseline float64
		for _, s := range schemes {
			pts, err := llmbench.Sweep(llmbench.System{
				Model: modelName, Device: dev, Framework: "TRT-LLM",
				Weights: s.w, KV: s.kv,
			}, grid)
			if err == nil && pts[0].Err != nil {
				err = pts[0].Err
			}
			if err != nil {
				fmt.Printf("  {%-4s, %-4s}  unsupported: %v\n", s.w, s.kv, err)
				continue
			}
			res := pts[0].Result
			if s.w == "fp16" && s.kv == "fp16" {
				baseline = res.Throughput
			}
			speedup := res.Throughput / baseline
			fmt.Printf("  {%-4s, %-4s}  %7.0f tok/s  (%.2fx fp16)  ppl ~%.2f\n",
				s.w, s.kv, res.Throughput, speedup, basePPL+pplDelta(s.w, s.kv))
		}
		fmt.Println()
	}
	fmt.Println("FP8 weights error out on A100 — the hardware has no FP8 GEMM")
	fmt.Println("(§IV-B3), so INT8 is its only low-precision weight option.")
}

// pplDelta mirrors quant.Scheme.PerplexityDelta for display.
func pplDelta(w, kv string) float64 {
	d := 0.0
	switch w {
	case "fp8":
		d += 0.015
	case "int8":
		d += 0.03
	}
	switch kv {
	case "fp8":
		d += 0.01
	case "int8":
		d += 0.02
	}
	return d
}

// prefixcache contrasts the three cluster routers on a workload every
// production chat deployment runs: requests sharing a fleet-wide
// system prompt. ServeGrid.PrefixShares prepends the shared prefix to
// every request and equips each replica with a tiered prefix cache —
// prefix blocks resident on the GPU serve hits for free, blocks
// demoted to the CPU tier restore over the host link (hw.HostLinkGBs),
// and a cold replica re-prefills the whole prompt. Round-robin and
// least-loaded are blind to that state; the prefix router steers each
// arrival to the warmest replica within a load window of the
// least-loaded one, so cache affinity never builds an unbounded queue.
//
// The configuration is the regime where routing visibly moves the
// capacity knee: templated traffic (batch extraction, classification
// over one big system prompt — 98% of an 8192-token prompt is the
// shared prefix, tight σ=0.1 length tails, 32 output tokens), chunked
// prefill so admissions fuse into decode instead of stalling it, and
// a host tier too small for the prefix, so a replica that drains goes
// fully cold and a blind router's next arrival there pays the whole
// establishment again.
//
//	go run ./examples/prefixcache
package main

import (
	"fmt"
	"log"

	"llmbench"
)

func main() {
	const (
		share = 0.98 // 8028 of the 8192 median prompt tokens are the shared prefix
		slo   = 1.25 // p99 latency target in seconds
	)
	fmt.Println("Prefix-cache routing: Mistral-7B templated traffic on A100/vLLM")
	fmt.Printf("(%.0f%% of the 8192-token median prompt is a fleet-wide prefix; p99 ≤ %gs)\n\n", share*100, slo)

	// One grid, three routers, identical tiered allocators and chunked
	// admission: routing is the only variable. The prefix share also
	// fixes the traffic shape (chat arrivals), so rr and ll see the
	// exact trace the prefix router does.
	policies := []llmbench.ServePolicy{
		{},                  // round-robin
		{LeastLoaded: true}, // join the shortest queue
		{Prefix: true},      // cache-affinity within a load window
	}
	pts, err := llmbench.ServeSweep(llmbench.ServeSweepConfig{
		System:   llmbench.System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		MaxBatch: 32,
		Seed:     42,
		Requests: 1600,
		// Ignored on mix-axis points, but required fields.
		InputMean: 512, OutputMean: 128,
		HostKVGiB:      0.05, // the tier holds blocks, not the whole prefix
		ChunkedPrefill: true,
		Sigma:          0.1,
		LeanStats:      true,
	}, llmbench.ServeGrid{
		Rates:        []float64{28, 36, 44},
		Replicas:     []int{16},
		Policies:     policies,
		PrefixShares: []float64{share},
		LengthMixes:  []llmbench.LengthMix{{Input: 8192, Output: 32}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("| Router | Rate (req/s) | Throughput (tok/s) | p95 (s) | p99 (s) | Cache hit (%) |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, p := range pts {
		if p.Err != nil {
			fmt.Printf("| %s | %g | — (%v) | | | |\n", p.Policy, p.Rate, p.Err)
			continue
		}
		fmt.Printf("| %s | %g | %.0f | %.2f | %.2f | %.1f |\n",
			p.Policy, p.Rate, p.Stats.Throughput, p.Stats.P95Latency, p.Stats.P99Latency,
			p.Stats.CacheHitRate*100)
	}

	knees, err := llmbench.Knees(pts, slo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCapacity knee per router (highest swept rate with p99 ≤ %gs):\n", slo)
	for _, k := range knees {
		if k.Met {
			fmt.Printf("  %-24s %g req/s (p99 %.2fs, cache hit %.1f%%)\n",
				k.Policy, k.Rate, k.Stats.P99Latency, k.Stats.CacheHitRate*100)
		} else {
			fmt.Printf("  %-24s no swept rate meets the SLO\n", k.Policy)
		}
	}
	fmt.Println()
	fmt.Println("Every admitted request whose prefix is resident skips those tokens'")
	fmt.Println("prefill entirely; a demoted prefix pays only the host-link restore.")
	fmt.Println("The hit-rate column is the capacity multiplier the shared prompt buys,")
	fmt.Println("and the knee gap is what routing for it is worth. At saturation the")
	fmt.Println("blind routers self-heal (in-flight requests keep every replica's")
	fmt.Println("prefix referenced), so the gap lives at moderate per-replica load —")
	fmt.Println("rerun with other shares or fleets: `llmbench-sweep -serve -chunked")
	fmt.Println("-policies rr,ll,prefix -prefix-shares 0.98 -sigma 0.1 ...`.")
}

// hwcompare reproduces the paper's accelerator-selection workflow
// (§VI / Figs. 23-25): given a model, sweep every accelerator ×
// framework combination in one llmbench.Sweep call (the Devices and
// Frameworks grid axes), let the vendor-preferred stack emerge from
// the measurements (§VII-2: "vendor-specific frameworks result in the
// best throughput"), and report who wins at each batch size plus the
// peak efficiency per platform. Combinations a framework does not
// support (Table III) fail per point and are skipped.
//
// SN40L is the one special case: the paper benchmarks it as an
// 8-socket node behind SambaFlow, so it gets its own single-system
// sweep at TP 8 — a second Sweep call, not a loop.
//
//	go run ./examples/hwcompare [model]
package main

import (
	"fmt"
	"log"
	"os"

	"llmbench"
)

var batches = []int{1, 16, 32, 64}

func main() {
	modelName := "LLaMA-3-8B"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	fmt.Printf("Accelerator comparison for %s (input/output 1024, fp16/bf16)\n\n", modelName)

	devices := []string{"GH200", "H100", "A100", "MI300X", "MI250", "Gaudi2"}

	// The single-accelerator comparison is one sweep: devices ×
	// frameworks × batches, engines cached per combination.
	pts, err := llmbench.Sweep(llmbench.System{Model: modelName}, llmbench.Grid{
		Devices:    devices,
		Frameworks: []string{"TRT-LLM", "vLLM", "DeepSpeed"},
		Batches:    batches,
		Lengths:    []int{1024},
	})
	if err != nil {
		fatal(err)
	}
	sn40l, err := llmbench.Sweep(
		llmbench.System{Model: modelName, Device: "SN40L", Framework: "SambaFlow", TP: 8},
		llmbench.Grid{Batches: batches, Lengths: []int{1024}})
	if err != nil {
		log.Printf("SN40L (SambaFlow, tp 8): %v", err)
	} else {
		pts = append(pts, sn40l...)
	}
	devices = append(devices, "SN40L")

	// Per device, keep the framework with the best peak throughput —
	// the measured version of the paper's vendor-stack rule.
	rows := map[string]*row{}
	for _, p := range pts {
		if p.Err != nil {
			continue // unsupported combination or OOM gap — the paper's empty cells
		}
		cand := rows[p.Device+"/"+p.Framework]
		if cand == nil {
			cand = &row{dev: p.Device, fw: p.Framework, thr: map[int]float64{}}
			rows[p.Device+"/"+p.Framework] = cand
		}
		cand.thr[p.Batch] = p.Result.Throughput
		if p.Result.Throughput > cand.peak {
			cand.peak = p.Result.Throughput
		}
		if p.Result.TokensPerSecPerW > cand.eff {
			cand.eff = p.Result.TokensPerSecPerW
		}
	}
	best := map[string]*row{}
	for _, r := range rows {
		if b := best[r.dev]; b == nil || r.peak > b.peak {
			best[r.dev] = r
		}
	}

	fmt.Printf("%-22s", "Platform (best stack)")
	for _, b := range batches {
		fmt.Printf("  bs %-6d", b)
	}
	fmt.Println(" peak tok/s/W")
	var ranked []*row
	for _, dev := range devices {
		r := best[dev]
		if r == nil {
			fmt.Printf("%-22s  no supported framework/batch fit\n", dev)
			continue
		}
		ranked = append(ranked, r)
		fmt.Printf("%-22s", fmt.Sprintf("%s (%s)", r.dev, r.fw))
		for _, b := range batches {
			if v, ok := r.thr[b]; ok {
				fmt.Printf("  %-9.0f", v)
			} else {
				fmt.Printf("  %-9s", "OOM")
			}
		}
		fmt.Printf(" %.2f\n", r.eff)
	}

	fmt.Println("\nWinner per batch size:")
	for _, b := range batches {
		bestName, bestV := "", 0.0
		for _, r := range ranked {
			if v := r.thr[b]; v > bestV {
				bestName, bestV = fmt.Sprintf("%s (%s)", r.dev, r.fw), v
			}
		}
		fmt.Printf("  bs %-3d → %-22s (%.0f tok/s)\n", b, bestName, bestV)
	}
}

type row struct {
	dev, fw string
	thr     map[int]float64
	eff     float64
	peak    float64
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hwcompare:", err)
	os.Exit(1)
}

// hwcompare reproduces the paper's accelerator-selection workflow
// (§VI / Figs. 23-25): given a model, sweep every accelerator it runs
// on with the best framework for that platform, and report who wins at
// each batch size, where SN40L's low-batch advantage ends, and the
// peak throughput per platform.
//
//	go run ./examples/hwcompare [model]
package main

import (
	"fmt"
	"log"
	"os"

	"llmbench"
)

type combo struct {
	dev, fw string
	tp      int
}

// bestStack is each platform's vendor-preferred framework (§VII-2:
// "vendor-specific frameworks result in the best throughput").
var bestStack = []combo{
	{"GH200", "TRT-LLM", 1},
	{"H100", "TRT-LLM", 1},
	{"A100", "TRT-LLM", 1},
	{"MI300X", "vLLM", 1},
	{"MI250", "vLLM", 1},
	{"Gaudi2", "DeepSpeed", 1},
	{"SN40L", "SambaFlow", 8},
}

func main() {
	modelName := "LLaMA-3-8B"
	if len(os.Args) > 1 {
		modelName = os.Args[1]
	}
	fmt.Printf("Accelerator comparison for %s (input/output 1024, fp16/bf16)\n\n", modelName)

	batches := []int{1, 16, 32, 64}
	fmt.Printf("%-22s", "Platform")
	for _, b := range batches {
		fmt.Printf("  bs %-6d", b)
	}
	fmt.Println(" peak tok/s/W")

	type row struct {
		name string
		thr  map[int]float64
		eff  float64
	}
	var rows []row
	for _, c := range bestStack {
		sys := llmbench.System{Model: modelName, Device: c.dev, Framework: c.fw, TP: c.tp}
		r := row{name: fmt.Sprintf("%d× %s (%s)", c.tp, c.dev, c.fw), thr: map[int]float64{}}
		pts, err := llmbench.Sweep(sys, llmbench.Grid{Batches: batches, Lengths: []int{1024}})
		if err != nil {
			log.Printf("%s: %v", r.name, err)
			continue
		}
		for _, p := range pts {
			if p.Err != nil {
				continue
			}
			r.thr[p.Batch] = p.Result.Throughput
			if p.Result.TokensPerSecPerW > r.eff {
				r.eff = p.Result.TokensPerSecPerW
			}
		}
		if len(r.thr) == 0 {
			log.Printf("%s: no batch size fit", r.name)
			continue
		}
		rows = append(rows, r)
	}
	for _, r := range rows {
		fmt.Printf("%-22s", r.name)
		for _, b := range batches {
			if v, ok := r.thr[b]; ok {
				fmt.Printf("  %-9.0f", v)
			} else {
				fmt.Printf("  %-9s", "OOM")
			}
		}
		fmt.Printf(" %.2f\n", r.eff)
	}

	fmt.Println("\nWinner per batch size:")
	for _, b := range batches {
		best, bestV := "", 0.0
		for _, r := range rows {
			if v := r.thr[b]; v > bestV {
				best, bestV = r.name, v
			}
		}
		fmt.Printf("  bs %-3d → %-22s (%.0f tok/s)\n", b, best, bestV)
	}
}

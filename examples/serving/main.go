// serving simulates a chatbot deployment — the workload the paper's
// introduction motivates — under Poisson arrivals, and contrasts the
// two batch schedulers of §IV-A1: Orca-style continuous batching vs
// traditional static batching, at increasing load.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"llmbench"
)

func main() {
	sys := llmbench.System{Model: "Mistral-7B", Device: "H100", Framework: "vLLM"}
	fmt.Println("Chat serving: Mistral-7B on one H100 via vLLM")
	fmt.Println("200 requests, prompts ~512 tokens, replies ~128 tokens")
	fmt.Println()
	fmt.Printf("%-10s %-12s %9s %9s %9s %9s %9s %9s %7s\n",
		"load", "scheduler", "tok/s", "p50 lat", "p95 lat", "p99 lat", "p99 queue", "mean TTFT", "preempt")

	for _, rate := range []float64{2, 8, 20} {
		for _, continuous := range []bool{true, false} {
			name := "static"
			if continuous {
				name = "continuous"
			}
			stats, err := llmbench.Serve(llmbench.ServeConfig{
				System:     sys,
				Continuous: continuous,
				MaxBatch:   32,
				Seed:       42,
				Requests:   200,
				RatePerSec: rate,
				InputMean:  512,
				OutputMean: 128,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-12s %9.0f %8.2fs %8.2fs %8.2fs %8.2fs %8.2fs %7d\n",
				fmt.Sprintf("%.0f req/s", rate), name,
				stats.Throughput, stats.P50Latency, stats.P95Latency, stats.P99Latency,
				stats.P99QueueDelay, stats.MeanTTFT, stats.Preemptions)
		}
	}

	fmt.Println()
	fmt.Println("Continuous batching admits requests at iteration granularity, so")
	fmt.Println("it keeps the device busy: higher token throughput and lower tail")
	fmt.Println("latency at every load level — the §IV-A1 result.")
}

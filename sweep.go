package llmbench

import (
	"fmt"

	"llmbench/internal/engine"
	"llmbench/internal/pool"
	"llmbench/internal/workload"
)

// Grid enumerates the workload points of a sweep: every (batch,
// length) combination, lengths outer and batches inner — the order
// the paper's figures (and `llmbench-sweep`) print.
type Grid struct {
	Batches []int
	Lengths []int // input = output = length, the paper's convention

	// Parallelism bounds the sweep's worker count; values below 1
	// mean GOMAXPROCS. Results are ordered by grid position
	// regardless, so output is byte-identical at any setting.
	Parallelism int
}

// points expands the grid in deterministic order.
func (g Grid) points() []Workload {
	pts := make([]Workload, 0, len(g.Batches)*len(g.Lengths))
	for _, l := range g.Lengths {
		for _, b := range g.Batches {
			pts = append(pts, Workload{Batch: b, Input: l, Output: l})
		}
	}
	return pts
}

// SweepPoint is one grid point's outcome. Err records points that
// fail individually (OOM, unsupported batch — the paper's gaps)
// without aborting the rest of the sweep.
type SweepPoint struct {
	Batch  int
	Length int
	Result Result
	Err    error
}

// Sweep evaluates every grid point of one System concurrently,
// building the engine once (via the shared engine cache) instead of
// once per point. The returned slice is ordered by grid position —
// lengths outer, batches inner — never by completion, so sweep output
// is reproducible at any parallelism.
//
// An invalid system or empty grid fails the whole call; per-point
// failures are aggregated in SweepPoint.Err.
func Sweep(sys System, grid Grid) ([]SweepPoint, error) {
	if len(grid.Batches) == 0 || len(grid.Lengths) == 0 {
		return nil, fmt.Errorf("llmbench: empty sweep grid (batches %v, lengths %v)",
			grid.Batches, grid.Lengths)
	}
	eng, err := CachedEngine(sys)
	if err != nil {
		return nil, err
	}
	pts := grid.points()
	out := make([]SweepPoint, len(pts))
	pool.ForEach(len(pts), grid.Parallelism, func(i int) error {
		w := pts[i]
		res, err := eng.Run(workload.Spec{Batch: w.Batch, Input: w.Input, Output: w.Output})
		out[i] = SweepPoint{Batch: w.Batch, Length: w.Input, Result: res, Err: err}
		return nil
	})
	return out, nil
}

// CachedEngine returns the shared engine for sys, building it on
// first use. The cache lives at the engine layer (engine.Cached) and
// is the only engine cache in the process: internal/experiments
// builds through the same one, so a figure regeneration and an ad-hoc
// sweep of the same system share a single engine and its memoised
// step costs. Catalog getters return canonical pointers and
// engine.Cached normalises zero plans/schemes, so equivalent System
// spellings ({TP: 0} vs {TP: 1}, "" vs "fp16") share an entry. Use
// NewEngine for a private instance.
func CachedEngine(sys System) (*engine.Engine, error) {
	cfg, err := systemConfig(sys)
	if err != nil {
		return nil, err
	}
	return engine.Cached(cfg)
}

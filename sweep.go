package llmbench

import (
	"errors"
	"fmt"

	"llmbench/internal/engine"
	"llmbench/internal/pool"
	"llmbench/internal/workload"
)

// Scheme names a weight/KV precision pair for the Schemes sweep axis.
// Empty strings mean fp16, matching System.
type Scheme struct {
	Weights string
	KV      string
}

// Grid enumerates the points of a sweep. Batches and Lengths are
// required; Devices, Frameworks, and Schemes are optional axes that
// override the base System per point (an empty axis keeps the base
// System's value). Axes nest in a fixed order — Devices outermost,
// then Frameworks, Schemes, Lengths, and Batches innermost — so sweep
// output is deterministic and the historical (batch, length) order
// the paper's figures print is preserved within each combination.
type Grid struct {
	Batches []int
	Lengths []int // input = output = length, the paper's convention

	// Devices/Frameworks/Schemes sweep hardware, software stack, and
	// precision in the same call (ROADMAP: hwcompare/quantsweep lose
	// their outer loops). Each (device, framework, scheme)
	// combination resolves one engine through the shared engine
	// cache; a combination that fails to build (vendor mismatch,
	// unsupported precision) marks its points' Err instead of
	// aborting the sweep — those are the paper's gaps.
	Devices    []string
	Frameworks []string
	Schemes    []Scheme

	// Parallelism bounds the sweep's worker count; values below 1
	// mean GOMAXPROCS. Results are ordered by grid position
	// regardless, so output is byte-identical at any setting.
	Parallelism int
}

// comboSystems expands the configuration axes in deterministic order
// (Devices ▸ Frameworks ▸ Schemes), returning the per-combination
// System variants. An empty axis keeps the base System's value. It is
// shared by Sweep and ServeSweep.
func comboSystems(base System, devices, frameworks []string, schemes []Scheme) []System {
	if len(devices) == 0 {
		devices = []string{base.Device}
	}
	if len(frameworks) == 0 {
		frameworks = []string{base.Framework}
	}
	if len(schemes) == 0 {
		schemes = []Scheme{{Weights: base.Weights, KV: base.KV}}
	}
	out := make([]System, 0, len(devices)*len(frameworks)*len(schemes))
	for _, d := range devices {
		for _, f := range frameworks {
			for _, s := range schemes {
				sys := base
				sys.Device = d
				sys.Framework = f
				sys.Weights = s.Weights
				sys.KV = s.KV
				out = append(out, sys)
			}
		}
	}
	return out
}

// joinBuildErrors is the whole-call failure of a sweep whose every
// combination failed to build: all distinct causes joined, so a
// three-device sweep that fully fails names all three errors instead
// of hiding two behind the first.
func joinBuildErrors(buildErrs []error) error {
	if len(buildErrs) == 1 {
		return buildErrs[0]
	}
	deduped := make([]error, 0, len(buildErrs))
	seen := make(map[string]bool, len(buildErrs))
	for _, err := range buildErrs {
		if err == nil || seen[err.Error()] {
			continue
		}
		seen[err.Error()] = true
		deduped = append(deduped, err)
	}
	if len(deduped) == 1 {
		return deduped[0]
	}
	return fmt.Errorf("llmbench: every sweep combination failed to build: %w", errors.Join(deduped...))
}

// SweepPoint is one grid point's outcome. Device, Framework, and
// Scheme record the effective configuration (identical to the base
// System when the corresponding axis is unset). Err records points
// that fail individually (OOM, unsupported batch or precision,
// framework-device mismatch — the paper's gaps) without aborting the
// rest of the sweep.
type SweepPoint struct {
	Batch     int
	Length    int
	Device    string
	Framework string
	Scheme    Scheme
	Result    Result
	Err       error
}

// Sweep evaluates every grid point concurrently. Engines are built
// once per (device, framework, scheme) combination through the shared
// engine cache and reused across that combination's whole
// batch×length sub-grid. The returned slice is ordered by grid
// position — Devices ▸ Frameworks ▸ Schemes ▸ Lengths ▸ Batches —
// never by completion, so sweep output is reproducible at any
// parallelism.
//
// An empty grid fails the whole call. A system that fails to resolve
// fails the whole call only when every combination fails (e.g. a bad
// model name, or the single implicit combination of an axis-less
// sweep); otherwise the failing combination's points carry the build
// error in SweepPoint.Err.
func Sweep(sys System, grid Grid) ([]SweepPoint, error) {
	if len(grid.Batches) == 0 || len(grid.Lengths) == 0 {
		return nil, fmt.Errorf("llmbench: empty sweep grid (batches %v, lengths %v)",
			grid.Batches, grid.Lengths)
	}
	combos := comboSystems(sys, grid.Devices, grid.Frameworks, grid.Schemes)

	// Resolve every combination's engine up front (serially — the
	// builds go through the shared cache), so point workers only run
	// workload points.
	engines := make([]*engine.Engine, len(combos))
	buildErrs := make([]error, len(combos))
	failed := 0
	for i, c := range combos {
		engines[i], buildErrs[i] = CachedEngine(c)
		if buildErrs[i] != nil {
			failed++
		}
	}
	if failed == len(combos) {
		return nil, joinBuildErrors(buildErrs)
	}

	perCombo := len(grid.Lengths) * len(grid.Batches)
	out := make([]SweepPoint, len(combos)*perCombo)
	pool.ForEach(len(out), grid.Parallelism, func(i int) error {
		combo := i / perCombo
		rest := i % perCombo
		length := grid.Lengths[rest/len(grid.Batches)]
		batch := grid.Batches[rest%len(grid.Batches)]
		c := combos[combo]
		p := SweepPoint{
			Batch: batch, Length: length,
			Device: c.Device, Framework: c.Framework,
			Scheme: Scheme{Weights: c.Weights, KV: c.KV},
		}
		if buildErrs[combo] != nil {
			p.Err = buildErrs[combo]
		} else {
			p.Result, p.Err = engines[combo].Run(workload.Spec{Batch: batch, Input: length, Output: length})
		}
		out[i] = p
		return nil
	})
	return out, nil
}

// CachedEngine returns the shared engine for sys, building it on
// first use. The cache lives at the engine layer (engine.Cached) and
// is the only engine cache in the process: internal/experiments
// builds through the same one, so a figure regeneration and an ad-hoc
// sweep of the same system share a single engine and its memoised
// step costs. Catalog getters return canonical pointers and
// engine.Cached normalises zero plans/schemes, so equivalent System
// spellings ({TP: 0} vs {TP: 1}, "" vs "fp16") share an entry. Use
// NewEngine for a private instance.
func CachedEngine(sys System) (*engine.Engine, error) {
	cfg, err := systemConfig(sys)
	if err != nil {
		return nil, err
	}
	return engine.Cached(cfg)
}
